// Package cost provides the paper's closed-form time complexity
// expressions (Lemma 3, Theorem 1, the Corollary, and the Section 5
// per-network results) so experiments can print "paper" columns next to
// measured values.
//
// All quantities are in parallel communication rounds. S2 is the cost of
// one PG_2 snake sort (the paper's S_2(N)); R is the cost of one
// permutation routing on the factor (the paper's R(N)).
package cost

import "fmt"

// MergeTime returns M_k(N) = 2(k-2)(S2+R) + S2, the merge cost of
// Lemma 3.
func MergeTime(k, s2, r int) int {
	if k < 2 {
		panic("cost: merge needs k ≥ 2")
	}
	return 2*(k-2)*(s2+r) + s2
}

// SortTime returns S_r(N) = (r-1)²·S2 + (r-1)(r-2)·R, the total sorting
// cost of Theorem 1.
func SortTime(r, s2, rr int) int {
	if r < 1 {
		panic("cost: sort needs r ≥ 1")
	}
	if r == 1 {
		return 0 // the paper's formula starts at r=2; PG_1 is out of scope
	}
	return (r-1)*(r-1)*s2 + (r-1)*(r-2)*rr
}

// CorollaryBound returns the universal upper bound of the Corollary:
// sorting N^r keys on any connected-factor product network takes at most
// 18(r-1)²·N + o(r²N) rounds; the leading term is returned.
func CorollaryBound(r, n int) int { return 18 * (r - 1) * (r - 1) * n }

// Paper per-network S_2 and R values quoted in Section 5. These use the
// specialized algorithms the paper cites (Schnorr–Shamir for grids,
// Kunde for tori); our implementation substitutes shearsort, so measured
// S_2 differs by its log-factor constant while every r-dependent term is
// identical.

// GridS2 is Schnorr–Shamir's 3N + o(N) (leading term).
func GridS2(n int) int { return 3 * n }

// GridR is the linear-array permutation routing bound N-1.
func GridR(n int) int { return n - 1 }

// TorusS2 is Kunde's 2.5N + o(N) (leading term, rounded up).
func TorusS2(n int) int { return (5*n + 1) / 2 }

// TorusR is the cycle permutation routing bound ⌈N/2⌉.
func TorusR(n int) int { return (n + 1) / 2 }

// HypercubeS2 is the paper's three-step sorter for the 4-node PG_2.
func HypercubeS2() int { return 3 }

// HypercubeR is one step: K2 neighbors are adjacent.
func HypercubeR() int { return 1 }

// GridSortTime is the paper's grid total: 4(r-1)²N + o(r²N)
// (= SortTime with S2=3N, R=N-1; the paper quotes the leading term).
func GridSortTime(r, n int) int { return SortTime(r, GridS2(n), GridR(n)) }

// HypercubeSortTime is the paper's hypercube total:
// 3(r-1)² + (r-1)(r-2).
func HypercubeSortTime(r int) int { return SortTime(r, HypercubeS2(), HypercubeR()) }

// BatcherHypercubeTime is the round count of Batcher's bitonic/odd-even
// merge sort on the r-dimensional hypercube: r(r+1)/2.
func BatcherHypercubeTime(r int) int { return r * (r + 1) / 2 }

// Class describes the asymptotic complexity class the paper assigns a
// network family (Section 5), for table rendering.
type Class string

// Complexity classes quoted in Section 5 of the paper.
const (
	ClassLinear  Class = "O(N) for fixed r; O(r²N) general"
	ClassSquareR Class = "O(r²)"
	ClassPolylog Class = "O(log²N) for fixed r; O(r²log²N) general"
)

// FamilyResult is one row of the Section 5 summary: the paper's claimed
// complexity for a product-network family.
type FamilyResult struct {
	Family     string
	FactorName string
	Class      Class
	// LeadTime returns the paper's leading-term round count for the
	// given (r, N), or -1 when the paper gives only an asymptotic class.
	LeadTime func(r, n int) int
}

// Section5 returns the paper's per-family results in presentation order.
func Section5() []FamilyResult {
	return []FamilyResult{
		{"grid", "path", ClassLinear, GridSortTime},
		{"mesh-connected trees", "complete binary tree", ClassLinear,
			func(r, n int) int { return CorollaryBound(r, n) }},
		{"hypercube", "K2", ClassSquareR, func(r, n int) int { return HypercubeSortTime(r) }},
		{"Petersen cube", "Petersen", ClassSquareR, func(r, n int) int { return -1 }},
		{"de Bruijn product", "de Bruijn", ClassPolylog, func(r, n int) int { return -1 }},
		{"shuffle-exchange product", "shuffle-exchange", ClassPolylog, func(r, n int) int { return -1 }},
	}
}

// Check panics unless measured phase counts match Theorem 1 exactly;
// used by the experiment harness as a tripwire.
func Check(r, s2Phases, sweeps int) {
	wantS2 := (r - 1) * (r - 1)
	wantSweeps := (r - 1) * (r - 2)
	if s2Phases != wantS2 || sweeps != wantSweeps {
		panic(fmt.Sprintf("cost: measured phases (S2=%d, sweeps=%d) disagree with Theorem 1 (S2=%d, sweeps=%d) for r=%d",
			s2Phases, sweeps, wantS2, wantSweeps, r))
	}
}

// Section 5.5's analytic S_2 model for de Bruijn / shuffle-exchange
// products: Batcher's algorithm on the N²-node de Bruijn graph embedded
// into the two-dimensional product with constant dilation.

// DeBruijnS2Model returns the modeled S_2 for an N-node de Bruijn
// factor: log2(N²)·(log2(N²)+1)/2 Batcher steps, each costing the
// embedding's dilation (2 per the paper's reference [9]).
func DeBruijnS2Model(n int) int {
	lg := 0
	for 1<<lg < n*n {
		lg++
	}
	return 2 * lg * (lg + 1) / 2
}

// DeBruijnRModel is the embedded routing step cost (dilation 2).
func DeBruijnRModel() int { return 2 }

// DeBruijnSortModel returns the paper's §5.5 round model for sorting
// N^r keys on the product of de Bruijn graphs: Theorem 1 with the
// embedded-Batcher S_2 — O(r² log² N).
func DeBruijnSortModel(r, n int) int {
	return SortTime(r, DeBruijnS2Model(n), DeBruijnRModel())
}
