package cost

import "testing"

func TestMergeTime(t *testing.T) {
	// M_2 = S2; M_3 = S2 + 2(S2+R); recurrence telescopes.
	if got := MergeTime(2, 10, 3); got != 10 {
		t.Errorf("M_2=%d want 10", got)
	}
	if got := MergeTime(3, 10, 3); got != 10+2*13 {
		t.Errorf("M_3=%d want 36", got)
	}
	// M_k = M_{k-1} + 2(S2+R) for all k.
	for k := 3; k < 9; k++ {
		if MergeTime(k, 7, 2)-MergeTime(k-1, 7, 2) != 2*(7+2) {
			t.Errorf("recurrence broken at k=%d", k)
		}
	}
}

func TestMergeTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeTime(1, 1, 1)
}

func TestSortTime(t *testing.T) {
	// Theorem 1's proof: S_r = S2 + sum_{k=3..r} M_k.
	for _, s2 := range []int{3, 10, 33} {
		for _, rr := range []int{1, 4, 9} {
			for r := 2; r <= 8; r++ {
				sum := s2
				for k := 3; k <= r; k++ {
					sum += MergeTime(k, s2, rr)
				}
				if got := SortTime(r, s2, rr); got != sum {
					t.Errorf("S_%d(s2=%d,R=%d)=%d want %d", r, s2, rr, got, sum)
				}
			}
		}
	}
	if SortTime(1, 5, 5) != 0 {
		t.Error("r=1 should cost 0 in the paper's accounting")
	}
}

func TestSortTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortTime(0, 1, 1)
}

func TestPaperConstants(t *testing.T) {
	if GridS2(10) != 30 || GridR(10) != 9 {
		t.Error("grid constants")
	}
	if TorusS2(10) != 25 || TorusR(10) != 5 || TorusR(7) != 4 {
		t.Error("torus constants")
	}
	if HypercubeS2() != 3 || HypercubeR() != 1 {
		t.Error("hypercube constants")
	}
	// Section 5.1: grid sorts in 4(r-1)²N + o(r²N); with S2=3N, R=N-1
	// the exact expression is (r-1)²·3N + (r-1)(r-2)(N-1).
	if got := GridSortTime(3, 10); got != 4*30+2*9 {
		t.Errorf("grid sort time=%d", got)
	}
	// Section 5.3: hypercube 3(r-1)² + (r-1)(r-2).
	if got := HypercubeSortTime(5); got != 3*16+4*3 {
		t.Errorf("hypercube sort time=%d", got)
	}
	if BatcherHypercubeTime(6) != 21 {
		t.Error("Batcher hypercube time")
	}
	if CorollaryBound(3, 10) != 720 {
		t.Error("corollary bound")
	}
}

func TestSection5Rows(t *testing.T) {
	rows := Section5()
	if len(rows) != 6 {
		t.Fatalf("%d families", len(rows))
	}
	for _, row := range rows {
		if row.Family == "" || row.FactorName == "" || row.Class == "" {
			t.Errorf("incomplete row %+v", row)
		}
		if row.LeadTime == nil {
			t.Errorf("%s: no lead-time function", row.Family)
		}
	}
	if rows[0].LeadTime(3, 4) != GridSortTime(3, 4) {
		t.Error("grid row lead time mismatch")
	}
	if rows[3].LeadTime(3, 10) != -1 {
		t.Error("Petersen row should report no closed form")
	}
}

func TestCheck(t *testing.T) {
	Check(4, 9, 6) // matches Theorem 1 exactly: must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch accepted")
		}
	}()
	Check(4, 9, 5)
}

func TestSection5LeadTimes(t *testing.T) {
	for _, row := range Section5() {
		v := row.LeadTime(3, 8)
		switch row.Family {
		case "grid":
			if v != GridSortTime(3, 8) {
				t.Errorf("grid lead time %d", v)
			}
		case "mesh-connected trees":
			if v != CorollaryBound(3, 8) {
				t.Errorf("mct lead time %d", v)
			}
		case "hypercube":
			if v != HypercubeSortTime(3) {
				t.Errorf("hypercube lead time %d", v)
			}
		default:
			if v != -1 {
				t.Errorf("%s: expected no closed form, got %d", row.Family, v)
			}
		}
	}
}

func TestDeBruijnModel(t *testing.T) {
	// N=8: log2(64)=6 → S2 = 2·6·7/2 = 42.
	if got := DeBruijnS2Model(8); got != 42 {
		t.Errorf("DeBruijnS2Model(8)=%d want 42", got)
	}
	if DeBruijnRModel() != 2 {
		t.Error("R model")
	}
	if got := DeBruijnSortModel(2, 8); got != SortTime(2, 42, 2) {
		t.Errorf("DeBruijnSortModel=%d", got)
	}
	// O(log²N) class: model/log2²N roughly constant for fixed r.
	a := float64(DeBruijnSortModel(2, 16)) / (4 * 4)
	b := float64(DeBruijnSortModel(2, 256)) / (8 * 8)
	if a/b > 1.6 || b/a > 1.6 {
		t.Errorf("log²N class violated: %f vs %f", a, b)
	}
}
