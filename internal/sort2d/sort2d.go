// Package sort2d sorts the two-dimensional blocks of a product network
// in snake order. It supplies the S_2(N) primitive the paper's
// generalized merge algorithm assumes: "an algorithm which can sort N^2
// keys" on PG_2 (Section 3.2).
//
// Engines operate on every PG_2 block of the machine simultaneously
// (disjoint blocks run in parallel on the simulated machine, so a phase
// costs the same whether it touches one block or all of them), and each
// block may be sorted ascending or descending in its local snake order —
// Step 4 of the merge needs alternating directions.
//
// Two general engines are provided: Shearsort, which needs
// (2⌈log2 N⌉+1)·N compare-exchange rounds, and SnakeOET, a plain
// odd-even transposition sort along the block's N^2-element snake. The
// paper plugs in Schnorr–Shamir (3N+o(N)) for grids; shearsort is used
// here instead because it runs verbatim on any factor graph — the
// substitution changes S_2's constant only (see DESIGN.md). For N=2 the
// Opt4 engine sorts a 4-node block in the optimal 3 rounds, matching the
// paper's hypercube constant.
package sort2d

import (
	"fmt"

	"productsort/internal/product"
)

// Machine is the abstract synchronous machine that engines (and the
// merge algorithm of package core) emit compare-exchange phases to. Two
// implementations exist: the live simulator (*simnet.Machine), which
// moves keys and charges rounds as phases arrive, and the schedule
// recorder (*schedule.Builder), which compiles the oblivious phase
// stream into a reusable program. The algorithm code is identical either
// way — the schedule depends only on the network, never on the keys.
type Machine interface {
	// Net returns the product network the phases address.
	Net() *product.Network
	// CompareExchange performs (or records) one parallel phase of
	// node-disjoint (lo, hi) pairs.
	CompareExchange(pairs [][2]int)
	// IdleRound charges one round with no data movement (the oblivious
	// schedule spends the step even when no processor has a partner).
	IdleRound()
	// BeginS2 and EndS2 bracket rounds attributable to PG_2 sorting.
	BeginS2()
	EndS2()
	// AddS2Phase records one completed S_2 invocation.
	AddS2Phase()
	// AddSweepPhase records one inter-subgraph transposition sweep.
	AddSweepPhase()
}

// Engine sorts every PG_2 block spanned by two dimensions.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Rounds predicts the compare-exchange rounds of one invocation for
	// factor size n, assuming a Hamiltonian-labeled factor (each round
	// then costs one machine round).
	Rounds(n int) int
	// RoundsAB predicts the rounds for one invocation on heterogeneous
	// nA×nB blocks (nA = dimension-1-role radix); RoundsAB(n, n) equals
	// Rounds(n).
	RoundsAB(nA, nB int) int
	// Sort sorts each block spanned by (dimA, dimB) — dimA playing the
	// "dimension 1" role of the block's snake order — into ascending
	// block-snake order where asc(base) is true and descending where
	// false. It must process all blocks in lockstep and record exactly
	// one S2 phase on the machine's clock.
	Sort(m Machine, dimA, dimB int, asc func(base int) bool)
}

// ascendingAll is the direction function for uniform ascending sorts.
func AscendingAll(int) bool { return true }

// Shearsort is the generic S_2 engine: ⌈log2 N⌉+1 alternating-direction
// row phases interleaved with ⌈log2 N⌉ column phases, each phase N
// rounds of odd-even transposition. Rows and columns are G-subgraphs, so
// every comparator touches label-consecutive factor symbols.
type Shearsort struct{}

// Name implements Engine.
func (Shearsort) Name() string { return "shearsort" }

// Rounds implements Engine: (2⌈log2 N⌉+1)·N. For N=2 every odd-parity
// transposition round is structurally empty (there is no pair starting
// at index 1), so each phase charges a single round and the total is 3.
func (Shearsort) Rounds(n int) int { return (Shearsort{}).RoundsAB(n, n) }

// RoundsAB predicts the rounds for a heterogeneous nA×nB block (nA =
// dimension-1-role radix, nB = number of rows): ⌈log2 nB⌉+1 row phases
// of effectively nA rounds and ⌈log2 nB⌉ column phases of nB rounds,
// with the n=2 empty-round trimming applied per axis.
func (Shearsort) RoundsAB(nA, nB int) int {
	rowCost := nA
	if nA == 2 {
		rowCost = 1
	}
	colCost := nB
	if nB == 2 {
		colCost = 1
	}
	k := ceilLog2(nB)
	return (k+1)*rowCost + k*colCost
}

// Sort implements Engine.
func (Shearsort) Sort(m Machine, dimA, dimB int, asc func(base int) bool) {
	net := m.Net()
	dims := []int{dimA, dimB}
	bases := net.BlockBases(dims)
	m.BeginS2()
	k := ceilLog2(net.Radix(dimB)) // nB rows
	for i := 0; i < k; i++ {
		rowPhase(m, bases, dimA, dimB, asc)
		columnPhase(m, bases, dimA, dimB, asc)
	}
	rowPhase(m, bases, dimA, dimB, asc)
	m.EndS2()
	m.AddS2Phase()
}

// rowPhase runs n rounds of odd-even transposition within every row of
// every block. Row v of an ascending block sorts ascending-by-dimA when
// v is even; descending blocks flip every direction.
func rowPhase(m Machine, bases []int, dimA, dimB int, asc func(base int) bool) {
	net := m.Net()
	nA, nB := net.Radix(dimA), net.Radix(dimB)
	for t := 0; t < nA; t++ {
		var pairs [][2]int
		for _, base := range bases {
			up := asc(base)
			for v := 0; v < nB; v++ {
				rowBase := net.SetDigit(base, dimB, v)
				rowAsc := (v%2 == 0) == up
				for a := t % 2; a+1 < nA; a += 2 {
					x := net.SetDigit(rowBase, dimA, a)
					y := net.SetDigit(rowBase, dimA, a+1)
					if rowAsc {
						pairs = append(pairs, [2]int{x, y})
					} else {
						pairs = append(pairs, [2]int{y, x})
					}
				}
			}
		}
		m.CompareExchange(pairs)
	}
}

// columnPhase runs n rounds of odd-even transposition within every
// column of every block; ascending blocks sort columns ascending-by-dimB.
func columnPhase(m Machine, bases []int, dimA, dimB int, asc func(base int) bool) {
	net := m.Net()
	nA, nB := net.Radix(dimA), net.Radix(dimB)
	for t := 0; t < nB; t++ {
		var pairs [][2]int
		for _, base := range bases {
			up := asc(base)
			for a := 0; a < nA; a++ {
				colBase := net.SetDigit(base, dimA, a)
				for v := t % 2; v+1 < nB; v += 2 {
					x := net.SetDigit(colBase, dimB, v)
					y := net.SetDigit(colBase, dimB, v+1)
					if up {
						pairs = append(pairs, [2]int{x, y})
					} else {
						pairs = append(pairs, [2]int{y, x})
					}
				}
			}
		}
		m.CompareExchange(pairs)
	}
}

// SnakeOET sorts each block by running N^2 rounds of odd-even
// transposition along the block's snake sequence. Simple, slower than
// shearsort for N ≥ 4; used as an ablation baseline for the S_2 engine
// choice.
type SnakeOET struct{}

// Name implements Engine.
func (SnakeOET) Name() string { return "snake-oet" }

// Rounds implements Engine: N^2.
func (SnakeOET) Rounds(n int) int { return n * n }

// RoundsAB implements Engine: the block size nA·nB.
func (SnakeOET) RoundsAB(nA, nB int) int { return nA * nB }

// Sort implements Engine.
func (SnakeOET) Sort(m Machine, dimA, dimB int, asc func(base int) bool) {
	net := m.Net()
	dims := []int{dimA, dimB}
	bases := net.BlockBases(dims)
	size := net.BlockSize(dims)
	m.BeginS2()
	for t := 0; t < size; t++ {
		var pairs [][2]int
		for _, base := range bases {
			up := asc(base)
			for p := t % 2; p+1 < size; p += 2 {
				x := net.NodeInBlock(base, dims, p)
				y := net.NodeInBlock(base, dims, p+1)
				if up {
					pairs = append(pairs, [2]int{x, y})
				} else {
					pairs = append(pairs, [2]int{y, x})
				}
			}
		}
		m.CompareExchange(pairs)
	}
	m.EndS2()
	m.AddS2Phase()
}

// Opt4 sorts 2x2 blocks (N=2 factors, e.g. the hypercube) in the optimal
// three rounds, matching the paper's "sort in snake order on the
// two-dimensional hypercube in three steps".
type Opt4 struct{}

// Name implements Engine.
func (Opt4) Name() string { return "opt4" }

// Rounds implements Engine: 3.
func (Opt4) Rounds(n int) int {
	if n != 2 {
		panic("sort2d: Opt4 requires N=2")
	}
	return 3
}

// RoundsAB implements Engine.
func (Opt4) RoundsAB(nA, nB int) int {
	if nA != 2 || nB != 2 {
		panic("sort2d: Opt4 requires N=2")
	}
	return 3
}

// Sort implements Engine. In block snake positions (00, 01, 11, 10) the
// schedule is comparators (0,1)(2,3); (0,3)(1,2); (0,1)(2,3), a valid
// 4-element sorting network whose comparators all follow block edges.
func (Opt4) Sort(m Machine, dimA, dimB int, asc func(base int) bool) {
	net := m.Net()
	if net.Radix(dimA) != 2 || net.Radix(dimB) != 2 {
		panic("sort2d: Opt4 requires N=2")
	}
	dims := []int{dimA, dimB}
	bases := net.BlockBases(dims)
	node := func(base, pos int) int { return net.NodeInBlock(base, dims, pos) }
	schedule := [][][2]int{
		{{0, 1}, {2, 3}},
		{{0, 3}, {1, 2}},
		{{0, 1}, {2, 3}},
	}
	m.BeginS2()
	for _, round := range schedule {
		var pairs [][2]int
		for _, base := range bases {
			up := asc(base)
			for _, c := range round {
				x, y := node(base, c[0]), node(base, c[1])
				if up {
					pairs = append(pairs, [2]int{x, y})
				} else {
					pairs = append(pairs, [2]int{y, x})
				}
			}
		}
		m.CompareExchange(pairs)
	}
	m.EndS2()
	m.AddS2Phase()
}

// Auto selects Opt4 for N=2 factors and Shearsort otherwise. It is the
// default engine of the public API.
type Auto struct{}

// Name implements Engine.
func (Auto) Name() string { return "auto" }

// Rounds implements Engine.
func (Auto) Rounds(n int) int { return (Auto{}).RoundsAB(n, n) }

// RoundsAB implements Engine.
func (Auto) RoundsAB(nA, nB int) int {
	if nA == 2 && nB == 2 {
		return 3
	}
	return (Shearsort{}).RoundsAB(nA, nB)
}

// Sort implements Engine.
func (Auto) Sort(m Machine, dimA, dimB int, asc func(base int) bool) {
	if m.Net().Radix(dimA) == 2 && m.Net().Radix(dimB) == 2 {
		Opt4{}.Sort(m, dimA, dimB, asc)
	} else {
		Shearsort{}.Sort(m, dimA, dimB, asc)
	}
}

// ByName returns the engine with the given name.
func ByName(name string) (Engine, error) {
	switch name {
	case "auto", "":
		return Auto{}, nil
	case "shearsort":
		return Shearsort{}, nil
	case "snake-oet":
		return SnakeOET{}, nil
	case "opt4":
		return Opt4{}, nil
	}
	return nil, fmt.Errorf("sort2d: unknown engine %q", name)
}

func ceilLog2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
