package sort2d

import (
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

func heteroNet(t *testing.T, factors ...*graph.Graph) *product.Network {
	t.Helper()
	net, err := product.NewHetero(factors)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestShearsortRectBlocks(t *testing.T) {
	shapes := [][]*graph.Graph{
		{graph.Path(4), graph.Path(3)},
		{graph.Path(3), graph.Path(4)},
		{graph.Path(2), graph.Path(7)},
		{graph.Path(8), graph.Path(2)},
		{graph.Cycle(5), graph.Path(3)},
	}
	for _, factors := range shapes {
		net := heteroNet(t, factors...)
		for seed := int64(0); seed < 4; seed++ {
			m := simnet.MustNew(net, randomKeys(net.Nodes(), seed))
			Shearsort{}.Sort(m, 1, 2, AscendingAll)
			checkBlockOrder(t, m, 1, 2, AscendingAll)
		}
	}
}

func TestShearsortRectZeroOneExhaustive(t *testing.T) {
	// 4×3 and 2×6 rectangles, all 2^12 zero-one inputs.
	for _, factors := range [][]*graph.Graph{
		{graph.Path(4), graph.Path(3)},
		{graph.Path(2), graph.Path(6)},
		{graph.Path(6), graph.Path(2)},
	} {
		net := heteroNet(t, factors...)
		size := net.Nodes()
		for mask := 0; mask < 1<<size; mask++ {
			keys := make([]simnet.Key, size)
			for i := range keys {
				keys[i] = simnet.Key(mask >> i & 1)
			}
			m := simnet.MustNew(net, keys)
			Shearsort{}.Sort(m, 1, 2, AscendingAll)
			if !m.IsSortedSnake() {
				t.Fatalf("%s: 0-1 input %b unsorted", net.Name(), mask)
			}
		}
	}
}

func TestSnakeOETRectBlocks(t *testing.T) {
	net := heteroNet(t, graph.Path(3), graph.Path(5))
	m := simnet.MustNew(net, randomKeys(net.Nodes(), 9))
	SnakeOET{}.Sort(m, 1, 2, AscendingAll)
	checkBlockOrder(t, m, 1, 2, AscendingAll)
	if got, want := m.Clock().Rounds, (SnakeOET{}).RoundsAB(3, 5); got != want {
		t.Errorf("rounds %d want %d", got, want)
	}
}

func TestShearsortRectPredictedRounds(t *testing.T) {
	cases := []struct{ nA, nB int }{{4, 3}, {3, 4}, {2, 7}, {8, 2}, {2, 2}}
	for _, c := range cases {
		net := heteroNet(t, graph.Path(c.nA), graph.Path(c.nB))
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 5))
		Shearsort{}.Sort(m, 1, 2, AscendingAll)
		if got, want := m.Clock().Rounds, (Shearsort{}).RoundsAB(c.nA, c.nB); got != want {
			t.Errorf("%dx%d: rounds %d want %d", c.nA, c.nB, got, want)
		}
	}
}

func TestRectDescendingAndAlternating(t *testing.T) {
	net := heteroNet(t, graph.Path(4), graph.Path(3), graph.Path(2))
	asc := func(base int) bool { return net.Digit(base, 3)%2 == 0 }
	m := simnet.MustNew(net, randomKeys(net.Nodes(), 13))
	Shearsort{}.Sort(m, 1, 2, asc)
	checkBlockOrder(t, m, 1, 2, asc)
}

func TestAutoHeteroPicksOpt4OnlyFor2x2(t *testing.T) {
	// 2×4 block: Auto must fall back to shearsort (Opt4 would panic).
	net := heteroNet(t, graph.Path(2), graph.Path(4))
	m := simnet.MustNew(net, randomKeys(8, 3))
	Auto{}.Sort(m, 1, 2, AscendingAll)
	checkBlockOrder(t, m, 1, 2, AscendingAll)
	// 2×2 all-K2: Auto uses Opt4's 3 rounds.
	net2 := heteroNet(t, graph.K2(), graph.K2())
	m2 := simnet.MustNew(net2, randomKeys(4, 3))
	Auto{}.Sort(m2, 1, 2, AscendingAll)
	if m2.Clock().Rounds != 3 {
		t.Errorf("auto on 2x2 took %d rounds", m2.Clock().Rounds)
	}
}

func TestRoundsABConsistency(t *testing.T) {
	for _, e := range []Engine{Shearsort{}, SnakeOET{}, Auto{}} {
		for _, n := range []int{2, 3, 4, 8} {
			if e.Rounds(n) != e.RoundsAB(n, n) {
				t.Errorf("%s: Rounds(%d) != RoundsAB(%d,%d)", e.Name(), n, n, n)
			}
		}
	}
	if (Opt4{}).Rounds(2) != (Opt4{}).RoundsAB(2, 2) {
		t.Error("opt4 inconsistency")
	}
}

// TestShearsortRandomFactors: the generic S2 engine on random connected
// factors, including routed comparators.
func TestShearsortRandomFactors(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomConnected(4+int(seed)%6, int(seed)%3, seed)
		net := product.MustNew(g, 2)
		m := simnet.MustNew(net, randomKeys(net.Nodes(), seed))
		Shearsort{}.Sort(m, 1, 2, AscendingAll)
		checkBlockOrder(t, m, 1, 2, AscendingAll)
	}
}
