package sort2d

import (
	"math/rand"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// checkBlockOrder verifies every block spanned by dims is sorted in the
// direction reported by asc.
func checkBlockOrder(t *testing.T, m *simnet.Machine, dimA, dimB int, asc func(int) bool) {
	t.Helper()
	net := m.Net()
	dims := []int{dimA, dimB}
	for _, base := range net.BlockBases(dims) {
		ks := m.BlockSnakeKeys(base, dims)
		up := asc(base)
		for i := 1; i < len(ks); i++ {
			if up && ks[i] < ks[i-1] {
				t.Fatalf("block %d not ascending at %d: %v", base, i, ks)
			}
			if !up && ks[i] > ks[i-1] {
				t.Fatalf("block %d not descending at %d: %v", base, i, ks)
			}
		}
	}
}

func randomKeys(n int, seed int64) []simnet.Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]simnet.Key, n)
	for i := range ks {
		ks[i] = simnet.Key(rng.Intn(1000))
	}
	return ks
}

func engines(n int) []Engine {
	es := []Engine{Shearsort{}, SnakeOET{}, Auto{}}
	if n == 2 {
		es = append(es, Opt4{})
	}
	return es
}

func TestSortAscendingAllFactors(t *testing.T) {
	factors := []*graph.Graph{
		graph.Path(3), graph.Path(4), graph.Path(5),
		graph.Cycle(4), graph.K2(), graph.Petersen(),
		graph.CompleteBinaryTree(3), // non-Hamiltonian: routed comparators
		graph.Star(4),               // non-Hamiltonian
		graph.DeBruijn(2, 3),
	}
	for _, g := range factors {
		net := product.MustNew(g, 2)
		for _, e := range engines(g.N()) {
			for seed := int64(0); seed < 3; seed++ {
				m := simnet.MustNew(net, randomKeys(net.Nodes(), seed))
				e.Sort(m, 1, 2, AscendingAll)
				checkBlockOrder(t, m, 1, 2, AscendingAll)
				if m.Clock().S2Phases != 1 {
					t.Errorf("%s on %s: S2Phases=%d want 1", e.Name(), g.Name(), m.Clock().S2Phases)
				}
			}
		}
	}
}

// TestSortZeroOneExhaustive applies the zero-one principle: an engine
// that sorts every 0-1 input sorts everything. Exhaustive over all 2^9
// inputs for N=3 and all 2^16 for N=4 (shearsort only).
func TestSortZeroOneExhaustive(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(3), graph.Cycle(3)} {
		net := product.MustNew(g, 2)
		size := net.Nodes()
		for _, e := range engines(g.N()) {
			for mask := 0; mask < 1<<size; mask++ {
				keys := make([]simnet.Key, size)
				for i := range keys {
					keys[i] = simnet.Key(mask >> i & 1)
				}
				m := simnet.MustNew(net, keys)
				e.Sort(m, 1, 2, AscendingAll)
				if !m.IsSortedSnake() {
					t.Fatalf("%s on %s failed 0-1 input %b: %v", e.Name(), g.Name(), mask, m.SnakeKeys())
				}
			}
		}
	}
	net := product.MustNew(graph.Path(4), 2)
	for mask := 0; mask < 1<<16; mask++ {
		keys := make([]simnet.Key, 16)
		for i := range keys {
			keys[i] = simnet.Key(mask >> i & 1)
		}
		m := simnet.MustNew(net, keys)
		Shearsort{}.Sort(m, 1, 2, AscendingAll)
		if !m.IsSortedSnake() {
			t.Fatalf("shearsort failed 0-1 input %016b", mask)
		}
	}
}

func TestOpt4Exhaustive(t *testing.T) {
	net := product.MustNew(graph.K2(), 2)
	// All 4! permutations and all 2^4 0-1 inputs.
	perms := [][]simnet.Key{}
	var permute func(cur, rest []simnet.Key)
	permute = func(cur, rest []simnet.Key) {
		if len(rest) == 0 {
			perms = append(perms, append([]simnet.Key(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]simnet.Key(nil), rest[:i]...), rest[i+1:]...)
			permute(append(cur, rest[i]), next)
		}
	}
	permute(nil, []simnet.Key{1, 2, 3, 4})
	for _, p := range perms {
		m := simnet.MustNew(net, p)
		Opt4{}.Sort(m, 1, 2, AscendingAll)
		if !m.IsSortedSnake() {
			t.Fatalf("Opt4 failed on %v: %v", p, m.SnakeKeys())
		}
		if m.Clock().Rounds != 3 {
			t.Fatalf("Opt4 took %d rounds want 3", m.Clock().Rounds)
		}
	}
}

func TestDescendingSort(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(3), graph.K2(), graph.Path(4)} {
		net := product.MustNew(g, 2)
		for _, e := range engines(g.N()) {
			m := simnet.MustNew(net, randomKeys(net.Nodes(), 11))
			desc := func(int) bool { return false }
			e.Sort(m, 1, 2, desc)
			checkBlockOrder(t, m, 1, 2, desc)
		}
	}
}

// TestAlternatingDirectionsAcrossBlocks sorts the PG_2 blocks of a
// 3-dimensional network with direction chosen per block, as Step 4 of
// the merge does.
func TestAlternatingDirectionsAcrossBlocks(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	groupDims := []int{3}
	asc := func(base int) bool { return net.BlockWeight(base, groupDims)%2 == 0 }
	for _, e := range engines(3) {
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 5))
		e.Sort(m, 1, 2, asc)
		checkBlockOrder(t, m, 1, 2, asc)
	}
}

// TestSortOnNonUnitDims sorts blocks spanned by dimensions other than
// {1,2}, which the recursive merge requires.
func TestSortOnNonUnitDims(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	for _, dims := range [][2]int{{2, 3}, {1, 3}, {3, 1}, {2, 1}} {
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 7))
		Shearsort{}.Sort(m, dims[0], dims[1], AscendingAll)
		checkBlockOrder(t, m, dims[0], dims[1], AscendingAll)
	}
}

func TestPredictedRounds(t *testing.T) {
	// On Hamiltonian-labeled factors the measured rounds must equal the
	// engine's prediction.
	cases := []struct {
		g *graph.Graph
		e Engine
	}{
		{graph.Path(3), Shearsort{}},
		{graph.Path(4), Shearsort{}},
		{graph.Path(8), Shearsort{}},
		{graph.Path(3), SnakeOET{}},
		{graph.Path(5), SnakeOET{}},
		{graph.K2(), Opt4{}},
		{graph.K2(), Auto{}},
		{graph.Petersen(), Auto{}},
	}
	for _, c := range cases {
		net := product.MustNew(c.g, 2)
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 3))
		c.e.Sort(m, 1, 2, AscendingAll)
		if got, want := m.Clock().Rounds, c.e.Rounds(c.g.N()); got != want {
			t.Errorf("%s on %s: %d rounds want %d", c.e.Name(), c.g.Name(), got, want)
		}
	}
}

func TestRoundsFormulas(t *testing.T) {
	if (Shearsort{}).Rounds(4) != (2*2+1)*4 {
		t.Error("shearsort rounds formula")
	}
	if (Shearsort{}).Rounds(3) != (2*2+1)*3 {
		t.Error("shearsort rounds formula for non-power-of-two")
	}
	if (SnakeOET{}).Rounds(5) != 25 {
		t.Error("snake-oet rounds formula")
	}
	if (Opt4{}).Rounds(2) != 3 {
		t.Error("opt4 rounds")
	}
	if (Shearsort{}).Rounds(2) != 3 {
		t.Error("shearsort N=2 rounds (odd-parity rounds are empty)")
	}
	if (Auto{}).Rounds(2) != 3 || (Auto{}).Rounds(6) != (Shearsort{}).Rounds(6) {
		t.Error("auto rounds")
	}
}

func TestOpt4RejectsLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Opt4 accepted N=3")
		}
	}()
	net := product.MustNew(graph.Path(3), 2)
	m := simnet.MustNew(net, randomKeys(9, 1))
	Opt4{}.Sort(m, 1, 2, AscendingAll)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"auto", "shearsort", "snake-oet", "opt4", ""} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus engine accepted")
	}
}

func TestGoroutineExecutorSorts(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	m := simnet.MustNew(net, randomKeys(16, 21))
	m.SetExecutor(simnet.GoroutineExec{})
	Shearsort{}.Sort(m, 1, 2, AscendingAll)
	if !m.IsSortedSnake() {
		t.Error("goroutine executor produced unsorted block")
	}
}

// TestDuplicateKeysStable checks sorting with many duplicates.
func TestDuplicateKeysStable(t *testing.T) {
	net := product.MustNew(graph.Path(5), 2)
	keys := make([]simnet.Key, 25)
	for i := range keys {
		keys[i] = simnet.Key(i % 3)
	}
	m := simnet.MustNew(net, keys)
	Shearsort{}.Sort(m, 1, 2, AscendingAll)
	if !m.IsSortedSnake() {
		t.Error("duplicates broke shearsort")
	}
}

func BenchmarkShearsortPath8(b *testing.B) {
	net := product.MustNew(graph.Path(8), 2)
	keys := randomKeys(64, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := simnet.MustNew(net, keys)
		Shearsort{}.Sort(m, 1, 2, AscendingAll)
	}
}

func BenchmarkSnakeOETPath8(b *testing.B) {
	net := product.MustNew(graph.Path(8), 2)
	keys := randomKeys(64, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := simnet.MustNew(net, keys)
		SnakeOET{}.Sort(m, 1, 2, AscendingAll)
	}
}
