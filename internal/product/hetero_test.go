package product

import (
	"testing"

	"productsort/internal/graph"
	"productsort/internal/gray"
)

func TestNewHeteroValidation(t *testing.T) {
	if _, err := NewHetero(nil); err == nil {
		t.Error("empty factor list accepted")
	}
	if _, err := NewHetero([]*graph.Graph{graph.Path(3), nil}); err == nil {
		t.Error("nil factor accepted")
	}
	p, err := NewHetero([]*graph.Graph{graph.Path(4), graph.Cycle(3), graph.K2()})
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 24 || p.R() != 3 {
		t.Fatalf("sizes wrong: %d nodes, r=%d", p.Nodes(), p.R())
	}
	if p.Homogeneous() {
		t.Error("mixed factors reported homogeneous")
	}
	if !MustNew(graph.Path(3), 3).Homogeneous() {
		t.Error("homogeneous network misreported")
	}
}

func TestHeteroRadices(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Path(4), graph.Cycle(3), graph.K2()})
	if p.Radix(1) != 4 || p.Radix(2) != 3 || p.Radix(3) != 2 {
		t.Fatal("radices wrong")
	}
	rs := p.Radices()
	if len(rs) != 3 || rs[0] != 4 || rs[1] != 3 || rs[2] != 2 {
		t.Fatalf("Radices()=%v", rs)
	}
	rs[0] = 99
	if p.Radix(1) != 4 {
		t.Error("Radices aliases internal state")
	}
	if p.Stride(1) != 1 || p.Stride(2) != 4 || p.Stride(3) != 12 {
		t.Error("strides wrong")
	}
	if p.N() != 4 {
		t.Error("N() should report dimension-1 radix")
	}
	if p.FactorAt(2).Name() != "cycle3" {
		t.Error("FactorAt wrong")
	}
}

func TestHeteroName(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Path(4), graph.Cycle(3)})
	if p.Name() != "cycle3*path4" {
		t.Errorf("name %q", p.Name())
	}
}

func TestHeteroLabelRoundTrip(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Path(3), graph.Path(5), graph.Path(2)})
	buf := make([]int, 3)
	for id := 0; id < p.Nodes(); id++ {
		if got := p.ID(p.Label(id, buf)); got != id {
			t.Fatalf("round trip broke at %d", id)
		}
		if p.Digit(id, 1) != buf[0] || p.Digit(id, 2) != buf[1] || p.Digit(id, 3) != buf[2] {
			t.Fatalf("digits disagree with label at %d", id)
		}
	}
}

// TestHeteroAdjacencyRectGrid: a 4×3 grid's adjacency is the usual
// Manhattan neighborhood.
func TestHeteroAdjacencyRectGrid(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Path(4), graph.Path(3)})
	for a := 0; a < 12; a++ {
		ax, ay := a%4, a/4
		for b := 0; b < 12; b++ {
			bx, by := b%4, b/4
			dx, dy := abs(ax-bx), abs(ay-by)
			want := dx+dy == 1
			if got := p.Adjacent(a, b); got != want {
				t.Fatalf("Adjacent(%d,%d)=%v want %v", a, b, got, want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestHeteroNeighborsDegreesEdges(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Cycle(4), graph.Path(3), graph.K2()})
	total := 0
	for id := 0; id < p.Nodes(); id++ {
		nbs := p.Neighbors(id)
		if len(nbs) != p.Degree(id) {
			t.Fatalf("degree mismatch at %d", id)
		}
		for _, nb := range nbs {
			if !p.Adjacent(id, nb) {
				t.Fatalf("neighbor %d of %d not adjacent", nb, id)
			}
		}
		total += len(nbs)
	}
	if total/2 != p.EdgeCount() {
		t.Fatalf("edge count %d vs handshake %d", p.EdgeCount(), total/2)
	}
	// Diameter: cycle4 (2) + path3 (2) + K2 (1) = 5.
	if p.Diameter() != 5 {
		t.Errorf("diameter=%d want 5", p.Diameter())
	}
}

func TestHeteroSnakeRoundTrip(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Path(2), graph.Path(4), graph.Path(3)})
	seen := make([]bool, p.Nodes())
	for pos := 0; pos < p.Nodes(); pos++ {
		id := p.NodeAtSnake(pos)
		if seen[id] {
			t.Fatalf("snake repeats node %d", id)
		}
		seen[id] = true
		if p.SnakePos(id) != pos {
			t.Fatalf("snake round trip broke at pos %d", pos)
		}
	}
	// Consecutive snake nodes adjacent (all factors Hamiltonian-labeled).
	for pos := 0; pos+1 < p.Nodes(); pos++ {
		if !p.Adjacent(p.NodeAtSnake(pos), p.NodeAtSnake(pos+1)) {
			t.Fatalf("snake break at %d", pos)
		}
	}
}

func TestHeteroBlockAddressing(t *testing.T) {
	p := MustNewHetero([]*graph.Graph{graph.Path(2), graph.Path(4), graph.Path(3)})
	dims := []int{1, 2} // block size 2*4 = 8
	if p.BlockSize(dims) != 8 {
		t.Fatalf("block size %d", p.BlockSize(dims))
	}
	bases := p.BlockBases(dims)
	if len(bases) != 3 {
		t.Fatalf("%d bases", len(bases))
	}
	seen := make(map[int]bool)
	for _, base := range bases {
		for pos := 0; pos < 8; pos++ {
			id := p.NodeInBlock(base, dims, pos)
			if seen[id] {
				t.Fatalf("node %d in two blocks", id)
			}
			seen[id] = true
			if p.BlockSnakePos(id, dims) != pos {
				t.Fatalf("block snake round trip broke")
			}
		}
	}
	if len(seen) != p.Nodes() {
		t.Fatalf("blocks cover %d nodes", len(seen))
	}
	// Block snake positions agree with the mixed Gray code of the
	// block's radices.
	base := bases[0]
	label := make([]int, 2)
	for pos := 0; pos < 8; pos++ {
		id := p.NodeInBlock(base, dims, pos)
		label[0], label[1] = p.Digit(id, 1), p.Digit(id, 2)
		if gray.SnakeRankMixed(label, []int{2, 4}) != pos {
			t.Fatalf("block snake disagrees with mixed gray at %d", pos)
		}
	}
}
