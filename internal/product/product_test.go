package product

import (
	"testing"
	"testing/quick"

	"productsort/internal/graph"
	"productsort/internal/gray"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(graph.Path(3), 0); err == nil {
		t.Error("r=0 accepted")
	}
	p, err := New(graph.Path(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 27 || p.N() != 3 || p.R() != 3 {
		t.Errorf("basic sizes wrong: %d %d %d", p.Nodes(), p.N(), p.R())
	}
	if p.Name() != "path3^3" {
		t.Errorf("name=%q", p.Name())
	}
}

func TestLabelIDRoundTrip(t *testing.T) {
	p := MustNew(graph.Cycle(4), 3)
	buf := make([]int, 3)
	for id := 0; id < p.Nodes(); id++ {
		if got := p.ID(p.Label(id, buf)); got != id {
			t.Fatalf("ID(Label(%d))=%d", id, got)
		}
	}
}

func TestDigitAndSetDigit(t *testing.T) {
	p := MustNew(graph.Path(5), 3)
	id := p.ID([]int{3, 1, 4}) // position1=3, position2=1, position3=4
	if p.Digit(id, 1) != 3 || p.Digit(id, 2) != 1 || p.Digit(id, 3) != 4 {
		t.Fatalf("digits wrong: %d %d %d", p.Digit(id, 1), p.Digit(id, 2), p.Digit(id, 3))
	}
	id2 := p.SetDigit(id, 2, 0)
	if p.Digit(id2, 2) != 0 || p.Digit(id2, 1) != 3 || p.Digit(id2, 3) != 4 {
		t.Fatal("SetDigit broke other digits")
	}
	if p.SetDigit(id, 2, 1) != id {
		t.Fatal("SetDigit to same value changed id")
	}
	if p.Stride(1) != 1 || p.Stride(2) != 5 || p.Stride(3) != 25 {
		t.Fatal("strides wrong")
	}
}

// TestHypercubeAdjacency: product of K2 is the hypercube; adjacency is
// differ-in-one-bit.
func TestHypercubeAdjacency(t *testing.T) {
	p := MustNew(graph.K2(), 4)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			x := a ^ b
			want := x != 0 && x&(x-1) == 0
			if got := p.Adjacent(a, b); got != want {
				t.Errorf("Adjacent(%04b,%04b)=%v want %v", a, b, got, want)
			}
		}
	}
}

// TestGridAdjacency: product of paths is the grid; adjacency is
// differ-by-one in a single coordinate.
func TestGridAdjacency(t *testing.T) {
	p := MustNew(graph.Path(4), 2)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			ax, ay := a%4, a/4
			bx, by := b%4, b/4
			dx, dy := ax-bx, ay-by
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			want := dx+dy == 1
			if got := p.Adjacent(a, b); got != want {
				t.Errorf("Adjacent(%d,%d)=%v want %v", a, b, got, want)
			}
		}
	}
}

func TestNeighborsMatchAdjacent(t *testing.T) {
	nets := []*Network{
		MustNew(graph.Path(3), 3),
		MustNew(graph.Petersen(), 2),
		MustNew(graph.CompleteBinaryTree(3), 2),
		MustNew(graph.K2(), 5),
	}
	for _, p := range nets {
		for id := 0; id < p.Nodes(); id++ {
			nbs := p.Neighbors(id)
			seen := make(map[int]bool, len(nbs))
			for _, nb := range nbs {
				if !p.Adjacent(id, nb) {
					t.Fatalf("%s: Neighbors(%d) contains non-adjacent %d", p.Name(), id, nb)
				}
				if seen[nb] {
					t.Fatalf("%s: duplicate neighbor %d of %d", p.Name(), nb, id)
				}
				seen[nb] = true
			}
			if len(nbs) != p.Degree(id) {
				t.Fatalf("%s: Degree(%d)=%d but %d neighbors", p.Name(), id, p.Degree(id), len(nbs))
			}
			// Exhaustive cross-check on the smaller networks.
			if p.Nodes() <= 128 {
				count := 0
				for b := 0; b < p.Nodes(); b++ {
					if p.Adjacent(id, b) {
						count++
						if !seen[b] {
							t.Fatalf("%s: Adjacent(%d,%d) but missing from Neighbors", p.Name(), id, b)
						}
					}
				}
				if count != len(nbs) {
					t.Fatalf("%s: node %d has %d adjacents, %d neighbors", p.Name(), id, count, len(nbs))
				}
			}
		}
	}
}

func TestEdgeCount(t *testing.T) {
	// 4-cube has 4*2^3 = 32 edges.
	if got := MustNew(graph.K2(), 4).EdgeCount(); got != 32 {
		t.Errorf("hypercube4 edges=%d want 32", got)
	}
	// 3x3 grid has 12 edges: 2*3 per direction * 2.
	if got := MustNew(graph.Path(3), 2).EdgeCount(); got != 12 {
		t.Errorf("grid3x3 edges=%d want 12", got)
	}
}

func TestDiameterAndDist(t *testing.T) {
	p := MustNew(graph.Path(4), 3)
	if p.Diameter() != 9 {
		t.Errorf("diameter=%d want 9", p.Diameter())
	}
	a := p.ID([]int{0, 0, 0})
	b := p.ID([]int{3, 3, 3})
	if p.Dist(a, b) != 9 {
		t.Errorf("corner distance=%d want 9", p.Dist(a, b))
	}
	if p.Dist(a, a) != 0 {
		t.Error("self distance nonzero")
	}
}

// TestSnakeNeighbors: when the factor is Hamiltonian-labeled, nodes at
// consecutive snake positions are adjacent in the product network. This
// is the property that makes snake-order compare-exchange single-hop.
func TestSnakeNeighbors(t *testing.T) {
	nets := []*Network{
		MustNew(graph.Path(3), 3),
		MustNew(graph.Cycle(5), 2),
		MustNew(graph.K2(), 6),
		MustNew(graph.Petersen(), 2),
	}
	for _, p := range nets {
		if !p.Factor().HamiltonianLabeled() {
			t.Fatalf("%s: factor unexpectedly not Hamiltonian-labeled", p.Name())
		}
		for pos := 0; pos+1 < p.Nodes(); pos++ {
			a, b := p.NodeAtSnake(pos), p.NodeAtSnake(pos+1)
			if !p.Adjacent(a, b) {
				t.Fatalf("%s: snake positions %d,%d are nodes %d,%d: not adjacent",
					p.Name(), pos, pos+1, a, b)
			}
		}
	}
}

func TestSnakePosRoundTrip(t *testing.T) {
	p := MustNew(graph.Path(3), 4)
	for id := 0; id < p.Nodes(); id++ {
		if got := p.NodeAtSnake(p.SnakePos(id)); got != id {
			t.Fatalf("NodeAtSnake(SnakePos(%d))=%d", id, got)
		}
	}
}

func TestBlockAddressing(t *testing.T) {
	p := MustNew(graph.Path(3), 4)
	dims := []int{1, 3}
	bases := p.BlockBases(dims)
	if len(bases) != 9 { // N^(r-2)
		t.Fatalf("got %d bases want 9", len(bases))
	}
	size := p.BlockSize(dims)
	if size != 9 {
		t.Fatalf("block size %d want 9", size)
	}
	seen := make(map[int]bool, p.Nodes())
	for _, base := range bases {
		if p.Digit(base, 1) != 0 || p.Digit(base, 3) != 0 {
			t.Fatalf("base %d has nonzero digits at dims", base)
		}
		for pos := 0; pos < size; pos++ {
			id := p.NodeInBlock(base, dims, pos)
			if seen[id] {
				t.Fatalf("node %d in two blocks", id)
			}
			seen[id] = true
			if got := p.BlockSnakePos(id, dims); got != pos {
				t.Fatalf("BlockSnakePos(NodeInBlock(%d,%d))=%d", base, pos, got)
			}
			if p.BlockBase(id, dims) != base {
				t.Fatalf("BlockBase(%d)=%d want %d", id, p.BlockBase(id, dims), base)
			}
			// Digits outside dims must match the base.
			if p.Digit(id, 2) != p.Digit(base, 2) || p.Digit(id, 4) != p.Digit(base, 4) {
				t.Fatal("block member strayed outside block")
			}
		}
	}
	if len(seen) != p.Nodes() {
		t.Fatalf("blocks cover %d nodes want %d", len(seen), p.Nodes())
	}
}

// TestBlockSnakeIsSubsetSnake verifies that walking a block in its local
// snake order visits product nodes such that consecutive ones differ by
// one symbol step in exactly one of the block's dimensions.
func TestBlockSnakeIsSubsetSnake(t *testing.T) {
	p := MustNew(graph.Path(4), 3)
	dims := []int{2, 3}
	base := p.ID([]int{1, 0, 0}) // fixed digit 1 at dimension 1
	prev := -1
	for pos := 0; pos < p.BlockSize(dims); pos++ {
		id := p.NodeInBlock(base, dims, pos)
		if p.Digit(id, 1) != 1 {
			t.Fatalf("block member %d lost its fixed dimension-1 digit", id)
		}
		if prev >= 0 {
			diffs := 0
			for dim := 1; dim <= 3; dim++ {
				a, b := p.Digit(prev, dim), p.Digit(id, dim)
				if a != b {
					diffs++
					if d := a - b; d != 1 && d != -1 {
						t.Fatalf("non-unit step between %d and %d at dim %d", prev, id, dim)
					}
				}
			}
			if diffs != 1 {
				t.Fatalf("%d differing dims between consecutive block-snake nodes", diffs)
			}
		}
		prev = id
	}
}

func TestBlockWeight(t *testing.T) {
	p := MustNew(graph.Path(5), 3)
	id := p.ID([]int{2, 3, 4})
	if w := p.BlockWeight(id, []int{1, 3}); w != 6 {
		t.Errorf("BlockWeight=%d want 6", w)
	}
	if w := p.BlockWeight(id, []int{2}); w != 3 {
		t.Errorf("BlockWeight=%d want 3", w)
	}
}

// Property: SetDigit then Digit round-trips, other digits unchanged.
func TestQuickSetDigit(t *testing.T) {
	p := MustNew(graph.Path(5), 4)
	f := func(idRaw uint16, dimRaw, vRaw uint8) bool {
		id := int(idRaw) % p.Nodes()
		dim := 1 + int(dimRaw)%4
		v := int(vRaw) % 5
		id2 := p.SetDigit(id, dim, v)
		if p.Digit(id2, dim) != v {
			return false
		}
		for d := 1; d <= 4; d++ {
			if d != dim && p.Digit(id2, d) != p.Digit(id, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: product distance equals sum of factor distances and is
// realized by edges (sanity-check against a BFS on the product graph).
func TestDistMatchesBFS(t *testing.T) {
	p := MustNew(graph.Petersen(), 2)
	// BFS from node 0 on the product graph.
	dist := make([]int, p.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range p.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for id := 0; id < p.Nodes(); id++ {
		if dist[id] != p.Dist(0, id) {
			t.Fatalf("Dist(0,%d)=%d but BFS says %d", id, p.Dist(0, id), dist[id])
		}
	}
}

func TestSnakePosMatchesGray(t *testing.T) {
	p := MustNew(graph.Path(3), 3)
	buf := make([]int, 3)
	for id := 0; id < p.Nodes(); id++ {
		want := gray.SnakeRank(p.Label(id, buf), 3)
		if got := p.SnakePos(id); got != want {
			t.Fatalf("SnakePos(%d)=%d want %d", id, got, want)
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	p := MustNew(graph.Petersen(), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Neighbors(i % p.Nodes())
	}
}

func BenchmarkAdjacent(b *testing.B) {
	p := MustNew(graph.Path(8), 4)
	for i := 0; i < b.N; i++ {
		p.Adjacent(i%p.Nodes(), (i*7)%p.Nodes())
	}
}

func TestSnakeCutWidth(t *testing.T) {
	// N×N grid: the snake bisection cuts one column of N horizontal
	// edges... actually the half-way snake cut severs the grid between
	// row N/2-1 and row N/2: exactly N vertical edges.
	for _, n := range []int{4, 6} {
		p := MustNew(graph.Path(n), 2)
		if got := p.SnakeCutWidth(); got != n {
			t.Errorf("grid %dx%d snake cut = %d want %d", n, n, got, n)
		}
	}
	// Hypercube r: cutting the Gray order in half severs exactly the
	// subcube boundary plus nothing else? The reflected Gray code's
	// first half is the subcube with top bit 0, so the cut is the
	// perfect matching of 2^(r-1) dimension-r edges.
	for _, r := range []int{3, 4, 5} {
		p := MustNew(graph.K2(), r)
		if got := p.SnakeCutWidth(); got != 1<<(r-1) {
			t.Errorf("hypercube %d snake cut = %d want %d", r, got, 1<<(r-1))
		}
	}
	// Torus side n: the snake cut severs two column cross-sections plus
	// wraparounds; just sanity-bound it.
	p := MustNew(graph.Cycle(4), 2)
	if got := p.SnakeCutWidth(); got < 4 || got > 12 {
		t.Errorf("torus4 snake cut = %d out of sane range", got)
	}
}
