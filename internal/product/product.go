// Package product implements r-dimensional product networks
// (Definition 1 of the paper) over factor graphs.
//
// A node is identified by an integer id in [0, ∏N_i): the lexicographic
// rank of its label with the dimension-1 symbol least significant.
// Labels follow the paper's convention: positions are indexed 1…r with
// position 1 rightmost; dimensions are 1-based throughout this package.
//
// Two nodes are adjacent iff their labels differ in exactly one symbol
// position and the differing symbols are adjacent in that dimension's
// factor graph. The paper studies homogeneous products (every dimension
// the same factor); this implementation also supports heterogeneous
// products (e.g. rectangular grids), which the sorting algorithm
// handles under a radix-ordering condition documented in package core.
package product

import (
	"fmt"

	"productsort/internal/graph"
	"productsort/internal/gray"
)

// Network is an r-dimensional product of factor graphs.
type Network struct {
	factors []*graph.Graph // factors[d-1] is the dimension-d factor
	radix   []int          // radix[d-1] = factors[d-1].N()
	r       int
	total   int
	stride  []int // stride[d-1] = ∏_{i<d} radix: weight of dimension d
	homog   bool
}

// New builds the homogeneous product PG_r from factor g. r must be at
// least 1 and N^r must fit in an int.
func New(g *graph.Graph, r int) (*Network, error) {
	if r < 1 {
		return nil, fmt.Errorf("product: dimension %d < 1", r)
	}
	factors := make([]*graph.Graph, r)
	for i := range factors {
		factors[i] = g
	}
	return NewHetero(factors)
}

// NewHetero builds the product of the given factor graphs, one per
// dimension: factors[0] is dimension 1 (least significant).
func NewHetero(factors []*graph.Graph) (*Network, error) {
	r := len(factors)
	if r < 1 {
		return nil, fmt.Errorf("product: need at least one factor")
	}
	radix := make([]int, r)
	stride := make([]int, r)
	total := 1
	homog := true
	for i, g := range factors {
		if g == nil {
			return nil, fmt.Errorf("product: nil factor at dimension %d", i+1)
		}
		radix[i] = g.N()
		stride[i] = total
		if total > int(^uint(0)>>1)/g.N() {
			return nil, fmt.Errorf("product: node count overflows int")
		}
		total *= g.N()
		if g != factors[0] {
			homog = false
		}
	}
	return &Network{factors: factors, radix: radix, r: r, total: total, stride: stride, homog: homog}, nil
}

// MustNew is New for statically-correct parameters; it panics on error.
func MustNew(g *graph.Graph, r int) *Network {
	p, err := New(g, r)
	if err != nil {
		panic(err)
	}
	return p
}

// MustNewHetero is NewHetero, panicking on error.
func MustNewHetero(factors []*graph.Graph) *Network {
	p, err := NewHetero(factors)
	if err != nil {
		panic(err)
	}
	return p
}

// Homogeneous reports whether every dimension shares one factor graph.
func (p *Network) Homogeneous() bool { return p.homog }

// Factor returns the dimension-1 factor graph; for homogeneous networks
// this is the factor graph. Use FactorAt for heterogeneous networks.
func (p *Network) Factor() *graph.Graph { return p.factors[0] }

// FactorAt returns the factor graph of 1-based dimension dim.
func (p *Network) FactorAt(dim int) *graph.Graph { return p.factors[dim-1] }

// R returns the number of dimensions.
func (p *Network) R() int { return p.r }

// N returns the dimension-1 factor size; for homogeneous networks this
// is the paper's N. Use Radix for heterogeneous networks.
func (p *Network) N() int { return p.radix[0] }

// Radix returns the symbol count of 1-based dimension dim.
func (p *Network) Radix(dim int) int { return p.radix[dim-1] }

// Radices returns a copy of all per-dimension symbol counts
// (index 0 = dimension 1).
func (p *Network) Radices() []int { return append([]int(nil), p.radix...) }

// Nodes returns the total node count.
func (p *Network) Nodes() int { return p.total }

// Name describes the network, e.g. "petersen^3" or "path4*path3*path2".
func (p *Network) Name() string {
	if p.homog {
		return fmt.Sprintf("%s^%d", p.factors[0].Name(), p.r)
	}
	name := ""
	for d := p.r; d >= 1; d-- {
		if name != "" {
			name += "*"
		}
		name += p.factors[d-1].Name()
	}
	return name
}

// Stride returns the weight of 1-based dimension dim in node ids.
func (p *Network) Stride(dim int) int { return p.stride[dim-1] }

// Label writes the r symbols of node id into buf (buf[0] = position 1)
// and returns buf. buf must have length r.
func (p *Network) Label(id int, buf []int) []int {
	if len(buf) != p.r {
		panic("product: label buffer has wrong length")
	}
	return gray.UnrankMixed(id, p.radix, buf)
}

// ID returns the node id of a label (inverse of Label).
func (p *Network) ID(label []int) int {
	if len(label) != p.r {
		panic("product: label has wrong length")
	}
	return gray.RankMixed(label, p.radix)
}

// Digit returns the symbol of node id at 1-based dimension dim.
func (p *Network) Digit(id, dim int) int {
	return (id / p.stride[dim-1]) % p.radix[dim-1]
}

// SetDigit returns the id of the node whose label equals that of id
// except that dimension dim carries symbol v.
func (p *Network) SetDigit(id, dim, v int) int {
	s := p.stride[dim-1]
	old := (id / s) % p.radix[dim-1]
	return id + (v-old)*s
}

// Adjacent reports whether nodes a and b are adjacent (Definition 1).
func (p *Network) Adjacent(a, b int) bool {
	if a == b {
		return false
	}
	for dim := p.r; dim >= 1; dim-- {
		da, db := p.Digit(a, dim), p.Digit(b, dim)
		if da == db {
			continue
		}
		// All lower dimensions must agree.
		s := p.stride[dim-1]
		if a%s != b%s || a/(s*p.radix[dim-1]) != b/(s*p.radix[dim-1]) {
			return false
		}
		return p.factors[dim-1].HasEdge(da, db)
	}
	return false
}

// Neighbors returns the ids of all neighbors of id, grouped by dimension
// (dimension 1 first) and by factor adjacency order within a dimension.
func (p *Network) Neighbors(id int) []int {
	out := make([]int, 0, p.r*4)
	for dim := 1; dim <= p.r; dim++ {
		d := p.Digit(id, dim)
		for _, nb := range p.factors[dim-1].Neighbors(d) {
			out = append(out, p.SetDigit(id, dim, nb))
		}
	}
	return out
}

// Degree returns the number of neighbors of id.
func (p *Network) Degree(id int) int {
	deg := 0
	for dim := 1; dim <= p.r; dim++ {
		deg += p.factors[dim-1].Degree(p.Digit(id, dim))
	}
	return deg
}

// Diameter returns the sum of the factor diameters (exact for products:
// distances add across dimensions).
func (p *Network) Diameter() int {
	d := 0
	for _, g := range p.factors {
		d += g.Diameter()
	}
	return d
}

// EdgeCount returns the total number of edges.
func (p *Network) EdgeCount() int {
	edges := 0
	for dim := 1; dim <= p.r; dim++ {
		edges += len(p.factors[dim-1].Edges()) * (p.total / p.radix[dim-1])
	}
	return edges
}

// SnakePos returns the position of node id in the snake order (the
// mixed-radix Gray-code rank of its label).
func (p *Network) SnakePos(id int) int {
	buf := make([]int, p.r)
	return gray.SnakeRankMixed(p.Label(id, buf), p.radix)
}

// NodeAtSnake returns the id of the node at the given snake position.
func (p *Network) NodeAtSnake(pos int) int {
	buf := make([]int, p.r)
	return p.ID(gray.SnakeUnrankMixed(pos, p.radix, buf))
}

// Dist returns the hop distance between nodes a and b: the sum over
// dimensions of factor distances between the differing symbols.
func (p *Network) Dist(a, b int) int {
	d := 0
	for dim := 1; dim <= p.r; dim++ {
		da, db := p.Digit(a, dim), p.Digit(b, dim)
		if da != db {
			d += p.factors[dim-1].Dist(da, db)
		}
	}
	return d
}

// --- Block (subgraph) addressing -------------------------------------
//
// The sorting algorithm repeatedly works on the subgraphs spanned by an
// ordered subset of dimensions ("dims"), with all other dimensions
// fixed. dims[0] plays the role of dimension 1 (least significant in the
// block's local snake order), dims[len-1] the most significant. A block
// is identified by its base node: the member whose digits at dims are
// all zero.

// blockRadix returns the radices of the block dimensions in role order.
func (p *Network) blockRadix(dims []int) []int {
	radix := make([]int, len(dims))
	for i, d := range dims {
		radix[i] = p.radix[d-1]
	}
	return radix
}

// BlockSize returns the number of nodes in a block spanned by dims.
func (p *Network) BlockSize(dims []int) int {
	size := 1
	for _, d := range dims {
		size *= p.radix[d-1]
	}
	return size
}

// BlockBase returns the base id of the block containing id with respect
// to dims: id with the digits at dims zeroed.
func (p *Network) BlockBase(id int, dims []int) int {
	for _, d := range dims {
		id = p.SetDigit(id, d, 0)
	}
	return id
}

// BlockBases returns the base id of every block with respect to dims, in
// increasing id order.
func (p *Network) BlockBases(dims []int) []int {
	inDims := make([]bool, p.r+1)
	for _, d := range dims {
		inDims[d] = true
	}
	var bases []int
	var rec func(dim, id int)
	rec = func(dim, id int) {
		if dim > p.r {
			bases = append(bases, id)
			return
		}
		if inDims[dim] {
			rec(dim+1, id)
			return
		}
		for v := 0; v < p.radix[dim-1]; v++ {
			rec(dim+1, id+v*p.stride[dim-1])
		}
	}
	rec(1, 0)
	return bases
}

// BlockSnakePos returns the snake position of id within its block: the
// mixed-radix Gray rank of its digits at dims, dims[0] least significant.
func (p *Network) BlockSnakePos(id int, dims []int) int {
	label := make([]int, len(dims))
	for i, d := range dims {
		label[i] = p.Digit(id, d)
	}
	return gray.SnakeRankMixed(label, p.blockRadix(dims))
}

// NodeInBlock returns the id of the node at the given block-local snake
// position within the block identified by base.
func (p *Network) NodeInBlock(base int, dims []int, pos int) int {
	label := make([]int, len(dims))
	gray.SnakeUnrankMixed(pos, p.blockRadix(dims), label)
	id := base
	for i, d := range dims {
		id = p.SetDigit(id, d, label[i])
	}
	return id
}

// BlockWeight returns the Hamming weight of id's digits at dims; its
// parity decides snake direction and transposition phase membership in
// Step 4 of the merge.
func (p *Network) BlockWeight(id int, dims []int) int {
	w := 0
	for _, d := range dims {
		w += p.Digit(id, d)
	}
	return w
}

// SnakeCutWidth returns the number of edges crossing the bisection that
// splits the snake order in half — an upper bound on the network's
// bisection width, the quantity Section 5.2 of the paper uses for lower
// bounds. Counts each crossing edge once; intended for networks small
// enough to enumerate.
func (p *Network) SnakeCutWidth() int {
	half := p.total / 2
	firstHalf := make([]bool, p.total)
	for pos := 0; pos < half; pos++ {
		firstHalf[p.NodeAtSnake(pos)] = true
	}
	cut := 0
	for id := 0; id < p.total; id++ {
		if !firstHalf[id] {
			continue
		}
		for _, nb := range p.Neighbors(id) {
			if !firstHalf[nb] {
				cut++
			}
		}
	}
	return cut
}
