// Package productsort sorts keys on simulated homogeneous product
// networks with the generalized multiway-merge algorithm of Fernández &
// Efe ("Generalized Algorithm for Parallel Sorting on Product Networks",
// ICPP 1995 / IEEE TPDS).
//
// A product network PG_r is built from an N-node factor graph G: nodes
// are r-tuples over {0..N-1}, adjacent when they differ in one symbol by
// an edge of G. Hypercubes (G = K2), grids (G = path), tori (G = cycle),
// mesh-connected trees (G = complete binary tree), Petersen cubes, and
// products of de Bruijn or shuffle-exchange graphs are all instances —
// and the same Sort call runs on every one of them, in
// (r-1)²·S₂(N) + (r-1)(r-2)·R(N) parallel rounds (Theorem 1).
//
// Basic use:
//
//	nw, _ := productsort.Grid(4, 3)            // 4×4×4 grid
//	res, _ := productsort.Sort(nw, keys)       // len(keys) == 64
//	fmt.Println(res.Keys)                      // sorted, snake order
//	fmt.Println(res.Rounds)                    // parallel time
//
// For request-driven workloads, NewServer wraps the same compiled
// programs in a batching sort service whose submit path is lock-free
// end to end — plans resolve through an epoch-managed versioned-read
// store and admission through sharded per-CPU counters (see server.go
// and Server.StoreStats for the observability surface).
package productsort

import (
	"fmt"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

// Key is the sortable value type: int64.
type Key = simnet.Key

// Network is a homogeneous product network.
type Network struct {
	net *product.Network
}

// Grid returns the r-dimensional grid with side n: the product of
// n-node paths (Section 5.1).
func Grid(n, r int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("productsort: grid side %d < 2", n)
	}
	return wrap(graph.Path(n), r)
}

// Torus returns the r-dimensional torus with side n: the product of
// n-node cycles (used in the Corollary's emulation argument).
func Torus(n, r int) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("productsort: torus side %d < 3", n)
	}
	return wrap(graph.Cycle(n), r)
}

// Hypercube returns the r-dimensional hypercube: the product of K2
// (Section 5.3).
func Hypercube(r int) (*Network, error) { return wrap(graph.K2(), r) }

// MeshConnectedTrees returns the r-dimensional mesh-connected trees
// network: the product of complete binary trees with the given number of
// levels (Section 5.2). The factor is not Hamiltonian for levels ≥ 3, so
// sweeps use routed compare-exchange, exactly as the paper prescribes.
func MeshConnectedTrees(levels, r int) (*Network, error) {
	if levels < 1 {
		return nil, fmt.Errorf("productsort: tree levels %d < 1", levels)
	}
	return wrap(graph.CompleteBinaryTree(levels), r)
}

// PetersenCube returns the r-dimensional product of the Petersen graph
// (Section 5.4): 10^r nodes of degree 3r.
func PetersenCube(r int) (*Network, error) { return wrap(graph.Petersen(), r) }

// DeBruijnProduct returns the r-dimensional product of the base-b,
// dimension-d de Bruijn graph (Section 5.5).
func DeBruijnProduct(b, d, r int) (*Network, error) {
	if b < 2 || d < 1 {
		return nil, fmt.Errorf("productsort: de Bruijn base %d / dim %d invalid", b, d)
	}
	return wrap(graph.DeBruijn(b, d), r)
}

// ShuffleExchangeProduct returns the r-dimensional product of the
// dimension-d shuffle-exchange graph (Section 5.5).
func ShuffleExchangeProduct(d, r int) (*Network, error) {
	if d < 1 {
		return nil, fmt.Errorf("productsort: shuffle-exchange dim %d < 1", d)
	}
	return wrap(graph.ShuffleExchange(d), r)
}

// Custom returns the r-dimensional product of a caller-supplied factor
// graph given as an edge list over nodes 0..n-1. The node labels define
// the sorted order; if they happen to trace a Hamiltonian path the sort
// uses single-hop compare-exchange, otherwise routed exchanges. Use
// RelabelHamiltonian to search for a better labeling first.
func Custom(name string, n int, edges [][2]int, r int) (*Network, error) {
	g, err := graph.New(name, n, edges)
	if err != nil {
		return nil, err
	}
	return wrap(g, r)
}

// RelabelHamiltonian searches the factor graph of nw for a Hamiltonian
// path (exponential search, intended for factors with ≲ 24 nodes) and
// returns a network whose factor is relabeled along it. The boolean
// reports whether the labels now trace a Hamiltonian path.
func RelabelHamiltonian(nw *Network) (*Network, bool) {
	g, ok := graph.HamiltonianRelabel(nw.net.Factor())
	if !ok {
		return nw, false
	}
	out, err := wrap(g, nw.net.R())
	if err != nil {
		panic(err) // same parameters as the valid input network
	}
	return out, true
}

func wrap(g *graph.Graph, r int) (*Network, error) {
	p, err := product.New(g, r)
	if err != nil {
		return nil, err
	}
	return &Network{net: p}, nil
}

// Name describes the network, e.g. "petersen^3".
func (nw *Network) Name() string { return nw.net.Name() }

// Nodes returns the processor count N^r.
func (nw *Network) Nodes() int { return nw.net.Nodes() }

// Dims returns the dimension count r.
func (nw *Network) Dims() int { return nw.net.R() }

// FactorSize returns the factor graph's node count N.
func (nw *Network) FactorSize() int { return nw.net.N() }

// Diameter returns the network diameter (r × factor diameter).
func (nw *Network) Diameter() int { return nw.net.Diameter() }

// Edges returns the total edge count.
func (nw *Network) Edges() int { return nw.net.EdgeCount() }

// HamiltonianFactor reports whether the factor labels trace a
// Hamiltonian path (single-hop compare-exchange) or not (routed).
func (nw *Network) HamiltonianFactor() bool {
	return nw.net.Factor().HamiltonianLabeled()
}

// SnakeOrder returns, for each snake position, the node id holding that
// position; Result.Keys follows this order.
func (nw *Network) SnakeOrder() []int {
	out := make([]int, nw.Nodes())
	for pos := range out {
		out[pos] = nw.net.NodeAtSnake(pos)
	}
	return out
}

// Result reports the outcome of a Sort.
type Result struct {
	// Keys holds the sorted keys in snake order.
	Keys []Key
	// ByNode holds the sorted keys indexed by node id.
	ByNode []Key
	// Rounds is the parallel communication time.
	Rounds int
	// S2Rounds and SweepRounds split Rounds between PG_2 sorting and
	// inter-subgraph transposition sweeps.
	S2Rounds, SweepRounds int
	// S2Phases is the number of PG_2 sort invocations; Theorem 1
	// predicts (r-1)².
	S2Phases int
	// Sweeps is the number of transposition sweeps; Theorem 1 predicts
	// (r-1)(r-2).
	Sweeps int
	// RoutedPhases counts phases that needed multi-hop routing (only
	// non-Hamiltonian factors).
	RoutedPhases int
	// Engine is the S_2 engine used.
	Engine string
	// Faults carries the fault-injection and recovery accounting of a
	// SortResilient or SortRandomized run; nil for fault-free sorts.
	Faults *FaultReport
	// Random carries the convergence accounting of a SortRandomized
	// run; nil for deterministic sorts.
	Random *RandomizedReport
}

// Sorter configures the algorithm.
type Sorter struct {
	engine     sort2d.Engine
	goroutines bool
	observer   func(stage string, snakeKeys []Key)
	tracer     obs.Tracer
}

// Option configures a Sorter.
type Option func(*Sorter) error

// WithEngine selects the S_2 engine by name: "auto" (default),
// "shearsort", "snake-oet", or "opt4" (N=2 factors only).
func WithEngine(name string) Option {
	return func(s *Sorter) error {
		e, err := sort2d.ByName(name)
		if err != nil {
			return err
		}
		s.engine = e
		return nil
	}
}

// WithGoroutines executes every compare-exchange phase with
// message-passing goroutines (one per participating processor) instead
// of the sequential executor. Results and round counts are identical;
// this exists to exercise true concurrency.
func WithGoroutines() Option {
	return func(s *Sorter) error {
		s.goroutines = true
		return nil
	}
}

// WithObserver registers a callback invoked after each major algorithm
// stage with the keys in snake order — useful for tracing.
func WithObserver(fn func(stage string, snakeKeys []Key)) Option {
	return func(s *Sorter) error {
		s.observer = fn
		return nil
	}
}

// NewSorter builds a Sorter from options.
func NewSorter(opts ...Option) (*Sorter, error) {
	s := &Sorter{engine: sort2d.Auto{}}
	for _, o := range opts {
		if err := o(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newResult assembles a Result from a replay clock and sorted keys
// (indexed by node id).
func newResult(nw *Network, clk simnet.Clock, engineName string, byNode []Key) *Result {
	snake := make([]Key, len(byNode))
	for pos := range snake {
		snake[pos] = byNode[nw.net.NodeAtSnake(pos)]
	}
	return &Result{
		Keys:         snake,
		ByNode:       byNode,
		Rounds:       clk.Rounds,
		S2Rounds:     clk.S2Rounds,
		SweepRounds:  clk.SweepRounds,
		S2Phases:     clk.S2Phases,
		Sweeps:       clk.SweepPhases,
		RoutedPhases: clk.RoutedPhases,
		Engine:       engineName,
	}
}

// Sort sorts keys on the network and returns the result. len(keys) must
// equal nw.Nodes(). Keys are assigned to nodes in snake order: keys[i]
// starts at snake position i. (Initial placement does not affect the
// algorithm's behaviour or cost; it is oblivious.)
//
// The sort replays the network's compiled phase program (see Compile);
// the first call on a topology compiles and caches it, later calls on
// the same topology — from any Sorter or goroutine — replay without
// rebuilding the schedule. Only an observer forces the direct path, so
// stage snapshots can be taken mid-flight.
func (s *Sorter) Sort(nw *Network, keys []Key) (*Result, error) {
	if len(keys) != nw.Nodes() {
		return nil, fmt.Errorf("productsort: %d keys for %d nodes", len(keys), nw.Nodes())
	}
	if s.observer == nil {
		c, err := s.Compile(nw)
		if err != nil {
			return nil, err
		}
		return c.Sort(keys)
	}
	m, err := simnet.New(nw.net, make([]Key, len(keys)))
	if err != nil {
		return nil, err
	}
	m.LoadSnake(keys)
	if s.goroutines {
		m.SetExecutor(simnet.GoroutineExec{})
	}
	if s.tracer != nil {
		m.SetTracer(s.tracer)
	}
	alg := core.New(s.engine)
	mach := m
	alg.Observer = func(stage string, _ sort2d.Machine) { s.observer(stage, mach.SnakeKeys()) }
	alg.Sort(m)
	return newResult(nw, m.Clock(), s.engine.Name(), m.Keys()), nil
}

// Sort sorts with the default configuration (auto S_2 engine).
func Sort(nw *Network, keys []Key) (*Result, error) {
	s, err := NewSorter()
	if err != nil {
		return nil, err
	}
	return s.Sort(nw, keys)
}

// CompiledNetwork is a network bound to its compiled phase program: the
// algorithm has run once (symbolically) and its full compare-exchange
// schedule, with per-round costs, is frozen. Sort and SortBatch replay
// the program without any schedule construction; the program itself
// lives in a process-wide cache keyed by topology, labeling, and
// engine, so compiling the "same" network twice is free. Safe for
// concurrent use.
type CompiledNetwork struct {
	nw     *Network
	prog   *schedule.Program
	exec   simnet.Executor
	tracer obs.Tracer
	family string // "" means FamilyProduct; see Family()
}

// Compile returns the network bound to its cached phase program for the
// Sorter's engine. The first compile of a topology runs the algorithm
// once to record the program; every later compile — from any Sorter —
// is a cache hit.
func (s *Sorter) Compile(nw *Network) (*CompiledNetwork, error) {
	prog, err := schedule.Compile(nw.net, s.engine)
	if err != nil {
		return nil, err
	}
	var exec simnet.Executor
	if s.goroutines {
		exec = simnet.GoroutineExec{}
	}
	return &CompiledNetwork{nw: nw, prog: prog, exec: exec, tracer: s.tracer}, nil
}

// Compile compiles the network with the default configuration.
func Compile(nw *Network) (*CompiledNetwork, error) {
	s, err := NewSorter()
	if err != nil {
		return nil, err
	}
	return s.Compile(nw)
}

// Network returns the network the program was compiled for.
func (c *CompiledNetwork) Network() *Network { return c.nw }

// Rounds returns the program's parallel round count (what every Sort
// will report).
func (c *CompiledNetwork) Rounds() int { return c.prog.Rounds() }

// Depth returns the number of non-empty compare-exchange phases.
func (c *CompiledNetwork) Depth() int { return c.prog.Depth() }

// Size returns the total comparator count.
func (c *CompiledNetwork) Size() int { return c.prog.Size() }

// Sort replays the compiled program over keys (snake order, like
// Sorter.Sort) and returns the result. No schedule work happens here —
// just compare-exchanges.
func (c *CompiledNetwork) Sort(keys []Key) (*Result, error) {
	if len(keys) != c.nw.Nodes() {
		return nil, fmt.Errorf("productsort: %d keys for %d nodes", len(keys), c.nw.Nodes())
	}
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[c.nw.net.NodeAtSnake(pos)] = k
	}
	clk, err := schedule.ExecBackend{Exec: c.exec, Tracer: c.tracer}.Run(c.prog, byNode)
	if err != nil {
		return nil, err
	}
	return newResult(c.nw, clk, c.prog.Engine(), byNode), nil
}

// batchColumns recycles the column slabs SortBatch transposes batches
// through, shared across all compiled networks (the pool tolerates
// mixed shapes: undersized slabs are dropped and regrown).
var batchColumns = schedule.NewColumnBuffer()

// SortBatch sorts many independent key sets (each in snake order, in
// place) through the one compiled program; workers < 1 picks a sensible
// default. This is the throughput mode the compile/execute split exists
// for: M sorts, one schedule. The replay is columnar: the batch is
// transposed into one contiguous column per snake position and the
// program is walked once for the whole batch, each compare-exchange a
// branchless min/max sweep across all sets (SIMD-accelerated where the
// host supports it); pooled slabs make a steady stream of batches
// allocate nothing per item.
func (c *CompiledNetwork) SortBatch(batch [][]Key, workers int) error {
	nodes := c.nw.Nodes()
	for i, keys := range batch {
		if len(keys) != nodes {
			return fmt.Errorf("productsort: batch[%d] has %d keys for %d nodes", i, len(keys), nodes)
		}
	}
	return schedule.RunBatchColumnar(c.prog, batch, workers, batchColumns)
}

// PredictedRounds returns Theorem 1's round count for this network with
// the named engine, valid exactly when every factor is
// Hamiltonian-labeled (one sweep then costs one round): for homogeneous
// networks this is (r-1)²·S₂ + (r-1)(r-2)·1; heterogeneous networks are
// evaluated by walking the same dimension recursion the sort performs.
func (nw *Network) PredictedRounds(engineName string) (int, error) {
	e, err := sort2d.ByName(engineName)
	if err != nil {
		return 0, err
	}
	return core.PredictedRounds(nw.net, e), nil
}

// IsSorted reports whether keys are nondecreasing.
func IsSorted(keys []Key) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// Merge merges the N sorted slabs of the network's top dimension into a
// fully sorted network: slab u (all nodes whose dimension-r symbol is u)
// must arrive sorted in its own snake order, given as slabs[u] with
// len == Nodes()/FactorSize(). This exposes the paper's multiway-merge
// step directly: merging N presorted streams in
// 2(r-2)·(S₂+R) + S₂ rounds (Lemma 3).
func (s *Sorter) Merge(nw *Network, slabs [][]Key) (*Result, error) {
	r := nw.Dims()
	if r < 2 {
		return nil, fmt.Errorf("productsort: merge needs at least 2 dimensions")
	}
	topRadix := nw.net.Radix(r)
	if len(slabs) != topRadix {
		return nil, fmt.Errorf("productsort: %d slabs for top radix %d", len(slabs), topRadix)
	}
	slabSize := nw.Nodes() / topRadix
	subDims := make([]int, r-1)
	for i := range subDims {
		subDims[i] = i + 1
	}
	m, err := simnet.New(nw.net, make([]Key, nw.Nodes()))
	if err != nil {
		return nil, err
	}
	keys := make([]Key, nw.Nodes())
	for u, slab := range slabs {
		if len(slab) != slabSize {
			return nil, fmt.Errorf("productsort: slab %d has %d keys, want %d", u, len(slab), slabSize)
		}
		if !IsSorted(slab) {
			return nil, fmt.Errorf("productsort: slab %d is not sorted", u)
		}
		base := nw.net.SetDigit(0, r, u)
		for pos, k := range slab {
			keys[nw.net.NodeInBlock(base, subDims, pos)] = k
		}
	}
	snake := make([]Key, len(keys))
	for pos := range snake {
		snake[pos] = keys[nw.net.NodeAtSnake(pos)]
	}
	m.LoadSnake(snake)
	if s.goroutines {
		m.SetExecutor(simnet.GoroutineExec{})
	}
	if s.tracer != nil {
		m.SetTracer(s.tracer)
	}
	core.New(s.engine).Merge(m, r)
	return newResult(nw, m.Clock(), s.engine.Name(), m.Keys()), nil
}

// SnakeCutWidth returns the edge count of the snake-order bisection: an
// upper bound on the network's bisection width, the quantity behind the
// paper's Section 5.2 lower-bound discussion.
func (nw *Network) SnakeCutWidth() int { return nw.net.SnakeCutWidth() }
