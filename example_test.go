package productsort_test

import (
	"context"
	"fmt"

	"productsort"
)

// The simplest use: build a network, hand it one key per processor, get
// back the keys in sorted snake order plus the parallel cost.
func ExampleSort() {
	nw, _ := productsort.Grid(3, 2) // 3×3 grid, 9 processors
	keys := []productsort.Key{5, 3, 8, 1, 9, 2, 7, 4, 6}
	res, _ := productsort.Sort(nw, keys)
	fmt.Println(res.Keys)
	fmt.Println(res.Rounds, "rounds")
	// Output:
	// [1 2 3 4 5 6 7 8 9]
	// 15 rounds
}

// The hypercube is the N=2 instance; its cost matches the paper's
// closed form 3(r-1)² + (r-1)(r-2) exactly.
func ExampleHypercube() {
	nw, _ := productsort.Hypercube(5) // 32 processors
	keys := make([]productsort.Key, 32)
	for i := range keys {
		keys[i] = productsort.Key(31 - i)
	}
	res, _ := productsort.Sort(nw, keys)
	r := nw.Dims()
	fmt.Println(res.Rounds == 3*(r-1)*(r-1)+(r-1)*(r-2))
	// Output:
	// true
}

// Custom factors: any connected graph works. A 5-cycle given with
// scrambled labels still sorts; relabeling along a Hamiltonian path
// removes the routed phases.
func ExampleCustom() {
	edges := [][2]int{{0, 2}, {2, 4}, {4, 1}, {1, 3}, {3, 0}}
	nw, _ := productsort.Custom("scrambled-c5", 5, edges, 2)
	relabeled, ok := productsort.RelabelHamiltonian(nw)
	fmt.Println(ok, relabeled.HamiltonianFactor())
	// Output:
	// true true
}

// Schedules make the obliviousness concrete: extract once, replay on
// any data, or sort blocks with the same number of parallel rounds.
func ExampleExtractSchedule() {
	nw, _ := productsort.Hypercube(4)
	sched, _ := productsort.ExtractSchedule(nw, "auto")
	keys := make([]productsort.Key, 16*8) // 8 keys per processor
	for i := range keys {
		keys[i] = productsort.Key(len(keys) - i)
	}
	st, _ := sched.SortBlocks(keys, 8)
	fmt.Println(productsort.IsSorted(keys), st.Rounds == sched.Depth())
	// Output:
	// true true
}

// PredictedRounds evaluates Theorem 1 for a network and engine without
// running the sort.
func ExampleNetwork_PredictedRounds() {
	nw, _ := productsort.Grid(4, 3)
	pred, _ := nw.PredictedRounds("shearsort")
	fmt.Println(pred) // (3-1)²·(2·2+1)·4 + (3-1)(3-2)·1
	// Output:
	// 82
}

// Rectangular grids (the heterogeneous extension): mixed side lengths,
// same algorithm, exact cost prediction.
func ExampleRectGrid() {
	nw, _ := productsort.RectGrid(4, 2) // 4 wide, 2 tall
	keys := []productsort.Key{7, 0, 5, 2, 6, 1, 4, 3}
	res, _ := productsort.Sort(nw, keys)
	fmt.Println(res.Keys)
	fmt.Print(nw.Render(res.Keys)) // snake layout: second row reversed
	// Output:
	// [0 1 2 3 4 5 6 7]
	// 0 1 2 3
	// 7 6 5 4
}

// Serving: a Server sorts requests of any admissible size by batching
// them onto compiled networks. SortKeys is the synchronous form; Submit
// returns a reply channel for pipelined callers.
func ExampleServer() {
	srv, _ := productsort.NewServer(productsort.ServerConfig{MaxKeys: 64})
	defer srv.Close(context.Background())
	sorted, _ := srv.SortKeys(context.Background(), []productsort.Key{9, 1, 8, 2, 7, 3})
	fmt.Println(sorted)
	// Output:
	// [1 2 3 7 8 9]
}

// The paper's multiway merge as an ordinary slice procedure.
func ExampleMergeSorted() {
	merged, _ := productsort.MergeSorted([][]productsort.Key{
		{1, 4, 7, 9},
		{2, 3, 8, 8},
	})
	fmt.Println(merged)
	// Output:
	// [1 2 3 4 7 8 8 9]
}
