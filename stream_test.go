package productsort

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/extsort"
)

// TestSortStreamMillionKeysOracle is the tier's acceptance bar: one
// million keys through certified 1024-node-network runs and the
// loser-tree merge, verified against sort.Slice key for key. CI's
// extsort job runs it under -race.
func TestSortStreamMillionKeysOracle(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	nw, err := Hypercube(10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(rng.Int63() - 1<<62)
	}
	got, stats, err := c.SortStreamKeys(context.Background(), keys, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%d keys out, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
	if stats.Keys != int64(n) || stats.Runs != int64((n+stats.RunSize-1)/stats.RunSize) {
		t.Fatalf("stats off: %+v for n=%d", stats, n)
	}
	t.Logf("n=%d runs=%d runSize=%d passes=%d maxFanIn=%d spilledBytes=%d",
		n, stats.Runs, stats.RunSize, stats.MergePasses, stats.MaxFanIn, stats.SpilledBytes)
}

// TestSortStreamSpillAtRoot: the public API under a memory budget far
// below the input — spilling engaged, output still oracle-exact.
func TestSortStreamSpillAtRoot(t *testing.T) {
	nw, err := Hypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	keys := make([]Key, 150_000)
	for i := range keys {
		keys[i] = Key(rng.Int63())
	}
	got, stats, err := c.SortStreamKeys(context.Background(), keys, StreamConfig{
		FanIn:      4,
		MemoryKeys: 1, // clamped to the merge floor; everything past it spills
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledRuns == 0 {
		t.Fatalf("no spilling despite the 1-key budget: %+v", stats)
	}
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// resilientRunSorter is the chaos leg's run sorter: every run is padded
// to the network and sorted by SortResilient under an active fault
// plan, so run formation itself must checkpoint, scrub and heal — and
// the stream must still come out sorted.
type resilientRunSorter struct {
	c    *CompiledNetwork
	cfg  FaultConfig
	runs int
}

func (rs *resilientRunSorter) MaxRun() int { return rs.c.Network().Nodes() }

func (rs *resilientRunSorter) SortRuns(ctx context.Context, runs [][]Key) error {
	nodes := rs.c.Network().Nodes()
	for _, run := range runs {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Pad the ragged tail with sentinels exactly as the batch
		// replay does (THEORY.md §12), vary the fault seed per run so
		// every run sees fresh chaos, and slice the real prefix back.
		padded := make([]Key, nodes)
		copy(padded, run)
		for i := len(run); i < nodes; i++ {
			padded[i] = Key(1<<63 - 1)
		}
		cfg := rs.cfg
		cfg.Seed += int64(rs.runs)
		rs.runs++
		res, err := rs.c.SortResilient(padded, cfg)
		if err != nil {
			return err
		}
		copy(run, res.Keys[:len(run)])
	}
	return nil
}

// TestSortStreamChaosRunFormation: the chaos leg. Run formation runs
// under an aggressive deterministic fault plan (drops, stalls,
// corruption) through the self-healing replay; VerifyRuns stands guard
// between the healed runs and the merge, and the merged stream must
// match the oracle exactly.
func TestSortStreamChaosRunFormation(t *testing.T) {
	nw, err := Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	sorter := &resilientRunSorter{
		c: c,
		cfg: FaultConfig{
			Seed:        42,
			DropRate:    0.2,
			StallRate:   0.1,
			CorruptRate: 0.05,
		},
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([]Key, 4_000)
	for i := range keys {
		keys[i] = Key(rng.Int63n(1 << 32))
	}
	out := extsort.NewSliceWriter()
	stats, err := extsort.Sort(context.Background(), extsort.NewSliceReader(keys), out, sorter, extsort.Config{
		RunSize:    24, // ragged against the 32-node network: padding + faults together
		FanIn:      4,
		VerifyRuns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Keys()
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%d keys out, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
	if stats.Runs != int64((len(keys)+23)/24) {
		t.Fatalf("runs = %d, want %d", stats.Runs, (len(keys)+23)/24)
	}
}

// TestServerSubmitStreamRoot: the public server lane sorts a stream
// far beyond MaxKeys and reports the extsort instruments through the
// server's registry.
func TestServerSubmitStreamRoot(t *testing.T) {
	srv, err := NewServer(ServerConfig{MaxKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	rng := rand.New(rand.NewSource(4))
	keys := make([]Key, 20_000)
	for i := range keys {
		keys[i] = Key(rng.Int63())
	}
	out := NewKeysWriter()
	stats, err := srv.SubmitStream(context.Background(), NewKeysReader(keys), out, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Keys != int64(len(keys)) {
		t.Fatalf("stats.Keys = %d, want %d", stats.Keys, len(keys))
	}
	got := out.Keys()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("SubmitStream output unsorted")
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counters["extsort.runs"] == 0 {
		t.Fatal("extsort.runs counter missing from the server registry")
	}
}
