// Serving: the multi-tenant batching sort service. A Server accepts
// sort requests of any admissible size, maps each to the cheapest
// covering compiled network (by predicted rounds), pads it with +inf
// sentinels, batches it with size-compatible neighbours, and replays
// the shared phase program once for the whole batch — the agglomeration
// idiom: many logical sorts, one network execution. Admission is
// bounded (overload sheds with ErrQueueFull), per-request contexts are
// honored until a request is bound into a flush, and Close drains
// gracefully. The submit path is lock-free: plans resolve through an
// epoch-managed versioned-read store and admission through sharded
// per-CPU counters. See internal/serve for the machinery, DESIGN.md
// S27 for the serving architecture and S30 for the lock-free store.

package productsort

import (
	"context"
	"errors"
	"time"

	"productsort/internal/serve"
	"productsort/internal/sort2d"
)

// SortedReply is the terminal answer to one Server.Submit: the sorted
// keys (or the request's error) plus batch and plan accounting.
type SortedReply = serve.Reply

// ServerStoreStats is a point-in-time snapshot of the server's plan
// store: lookup outcomes (Hits/Misses), versioned-read Retries,
// Evictions, and the epoch-reclamation ledger (Retired/Freed/Pending).
type ServerStoreStats = serve.StoreStats

// Typed serving errors; branch with errors.Is.
var (
	// ErrQueueFull is the overload-shedding signal: the request's size
	// bucket is at its admission bound.
	ErrQueueFull = serve.ErrQueueFull
	// ErrServerClosed rejects submissions after Close sealed admission.
	ErrServerClosed = serve.ErrClosed
	// ErrRequestTooLarge rejects requests no serving network covers.
	ErrRequestTooLarge = serve.ErrTooLarge
	// ErrEmptyRequest rejects zero-key requests.
	ErrEmptyRequest = serve.ErrEmpty
)

// ServerConfig parametrizes NewServer. The zero value of every field
// selects a sensible default (serving hypercubes, grids and tori up to
// 4096 keys with the auto engine).
type ServerConfig struct {
	// Networks are the candidate serving networks. A request of n keys
	// runs on the candidate with the fewest predicted rounds among
	// those with at least n nodes. Empty selects
	// DefaultServingNetworks(MaxKeys).
	Networks []*Network
	// Families adds emitted-network candidates (FamilyMultiway,
	// FamilyPeriodic) at every power-of-two size up to the serving
	// ceiling, competing with Networks on predicted rounds; the winning
	// family is reported per reply (SortedReply.Family) and counted per
	// flush (serve.planner.family.*). FamilyProduct is accepted and
	// ignored — the product candidates are Networks. Empty adds nothing,
	// preserving the product-only default.
	Families []string
	// Engine names the S_2 engine ("auto" when empty; see WithEngine).
	Engine string
	// MaxKeys sizes the default network set when Networks is empty
	// (default 4096). Ignored when Networks is given.
	MaxKeys int
	// MaxBatch flushes a size bucket when this many requests have
	// accumulated (default 64).
	MaxBatch int
	// MaxLinger flushes a non-empty bucket this long after its first
	// pending request arrived (default 2ms).
	MaxLinger time.Duration
	// QueueDepth bounds each bucket's admitted-but-unreplied requests
	// (default 1024); submissions beyond it shed with ErrQueueFull.
	QueueDepth int
	// Workers bounds concurrently running batch flushes (default
	// GOMAXPROCS).
	Workers int
	// PlanCacheSize bounds resident compiled programs in the plan
	// store; least recently served networks are evicted (reclaimed
	// safely through epoch grace periods) and recompiled on demand
	// (default 16).
	PlanCacheSize int
	// Metrics receives the serve.* instruments; nil creates a private
	// registry, reachable via Server.Metrics.
	Metrics *Metrics
}

// DefaultServingNetworks returns the stock candidate set covering 1 to
// at least maxKeys keys: hypercubes of every dimension up to the cover,
// plus side-4 grids and tori in the same range, so the planner has
// meaningfully different round/size trade-offs to choose from.
func DefaultServingNetworks(maxKeys int) []*Network {
	if maxKeys < 2 {
		maxKeys = 2
	}
	var nets []*Network
	for r := 1; ; r++ {
		nw, err := Hypercube(r)
		if err != nil {
			break
		}
		nets = append(nets, nw)
		if nw.Nodes() >= maxKeys {
			break
		}
	}
	for r := 2; ; r++ {
		if pow(4, r) > nets[len(nets)-1].Nodes() {
			break
		}
		if g, err := Grid(4, r); err == nil {
			nets = append(nets, g)
		}
		if tr, err := Torus(4, r); err == nil {
			nets = append(nets, tr)
		}
	}
	return nets
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Server is the request-driven sorting service. Safe for concurrent use
// by any number of submitters.
type Server struct {
	s *serve.Server
}

// NewServer builds a serving instance from cfg.
func NewServer(cfg ServerConfig) (*Server, error) {
	name := cfg.Engine
	if name == "" {
		name = "auto"
	}
	engine, err := sort2d.ByName(name)
	if err != nil {
		return nil, err
	}
	nets := cfg.Networks
	if len(nets) == 0 {
		maxKeys := cfg.MaxKeys
		if maxKeys < 1 {
			maxKeys = 4096
		}
		nets = DefaultServingNetworks(maxKeys)
	}
	cands := make([]serve.Candidate, len(nets))
	maxNodes := 0
	for i, nw := range nets {
		if nw == nil {
			return nil, errors.New("productsort: nil serving network")
		}
		cands[i] = serve.Candidate{Net: nw.net}
		if nw.Nodes() > maxNodes {
			maxNodes = nw.Nodes()
		}
	}
	fam, err := serve.FamilyCandidates(cfg.Families, maxNodes)
	if err != nil {
		return nil, err
	}
	planner, err := serve.NewPlannerCandidates(append(cands, fam...), engine)
	if err != nil {
		return nil, err
	}
	s, err := serve.New(serve.Config{
		Planner:       planner,
		MaxBatch:      cfg.MaxBatch,
		MaxLinger:     cfg.MaxLinger,
		QueueDepth:    cfg.QueueDepth,
		Workers:       cfg.Workers,
		PlanCacheSize: cfg.PlanCacheSize,
		Metrics:       cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Server{s: s}, nil
}

// MaxKeys returns the largest request size the server admits (the node
// count of its biggest serving network).
func (s *Server) MaxKeys() int { return s.s.MaxKeys() }

// Submit admits keys for sorting and returns the channel the single
// SortedReply will arrive on. The slice is copied, never retained or
// mutated. Admission fails fast with a typed error (ErrEmptyRequest,
// ErrRequestTooLarge, ErrServerClosed, ErrQueueFull) or the context's
// error if ctx is already done. The context is honored until the
// request is bound into a batch flush; after that the sort completes
// and the reply is delivered regardless, so one caller's cancellation
// never poisons its batchmates.
func (s *Server) Submit(ctx context.Context, keys []Key) (<-chan SortedReply, error) {
	return s.s.Submit(ctx, keys)
}

// SortKeys is the synchronous helper: Submit, then wait for the reply
// or the context. The sorted keys come back in a fresh slice.
func (s *Server) SortKeys(ctx context.Context, keys []Key) ([]Key, error) {
	return s.s.SortKeys(ctx, keys)
}

// Close seals admission and drains: every admitted request still
// receives its reply. ctx (nil means Background) bounds the wait; on
// expiry the drain continues in the background and Close returns the
// context's error. Idempotent.
func (s *Server) Close(ctx context.Context) error { return s.s.Close(ctx) }

// Metrics returns the registry the server reports into: admission and
// shed counters, plan-store hit/miss/retry/eviction counts, epoch
// retirement/reclamation counts, and per-bucket occupancy gauges plus
// latency and batch-size histograms.
func (s *Server) Metrics() *Metrics { return s.s.Metrics() }

// StoreStats snapshots the plan store's counters — the lock-free read
// path's health surface: hit/miss ratio, torn-read retries, evictions
// and the epoch ledger proving reclamation keeps pace.
func (s *Server) StoreStats() ServerStoreStats { return s.s.StoreStats() }
