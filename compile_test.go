package productsort

import (
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/schedule"
)

// TestCompiledNetworkSort: the compiled path returns the same result as
// the (observer-forced) direct path, and repeated Sort calls on one
// network perform zero schedule construction after the first.
func TestCompiledNetworkSort(t *testing.T) {
	schedule.ResetCache()
	defer schedule.ResetCache()
	nw, err := Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([]Key, nw.Nodes())
	for i := range keys {
		keys[i] = Key(rng.Intn(200))
	}

	// Direct path (observer forces the live machine).
	s, err := NewSorter(WithObserver(func(string, []Key) {}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Sort(nw, append([]Key(nil), keys...))
	if err != nil {
		t.Fatal(err)
	}

	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != want.Rounds {
		t.Errorf("compiled rounds %d != direct %d", c.Rounds(), want.Rounds)
	}
	got, err := c.Sort(append([]Key(nil), keys...))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.S2Phases != want.S2Phases || got.Sweeps != want.Sweeps {
		t.Errorf("compiled result %+v != direct %+v", got, want)
	}
	for i := range want.Keys {
		if got.Keys[i] != want.Keys[i] {
			t.Fatalf("key %d: got %d want %d", i, got.Keys[i], want.Keys[i])
		}
	}

	// Repeated sorts (plain Sort included) must not rebuild the schedule.
	compiles := schedule.Stats().Compiles
	for i := 0; i < 5; i++ {
		if _, err := Sort(nw, append([]Key(nil), keys...)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Sort(append([]Key(nil), keys...)); err != nil {
			t.Fatal(err)
		}
	}
	if got := schedule.Stats().Compiles; got != compiles {
		t.Errorf("repeated sorts recompiled: %d constructions, want %d", got, compiles)
	}
}

// TestSortBatch pushes several key sets through one compiled program
// and verifies each ends sorted.
func TestSortBatch(t *testing.T) {
	nw, err := Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const m = 9
	batch := make([][]Key, m)
	want := make([][]Key, m)
	for i := range batch {
		batch[i] = make([]Key, nw.Nodes())
		for j := range batch[i] {
			batch[i][j] = Key(rng.Intn(100))
		}
		want[i] = append([]Key(nil), batch[i]...)
		sort.Slice(want[i], func(a, b int) bool { return want[i][a] < want[i][b] })
	}
	if err := c.SortBatch(batch, 3); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		for j := range batch[i] {
			if batch[i][j] != want[i][j] {
				t.Fatalf("batch %d key %d: got %d want %d", i, j, batch[i][j], want[i][j])
			}
		}
	}
	// Shape errors surface before any work.
	if err := c.SortBatch([][]Key{make([]Key, 3)}, 2); err == nil {
		t.Error("want error for wrong key count")
	}
}
