package productsort

import (
	"sort"
	"testing"

	"productsort/internal/workload"
)

func TestNewFamilyConstructors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Network, error)
		nodes int
	}{
		{"circulant", func() (*Network, error) { return CirculantProduct(8, []int{1, 3}, 2) }, 64},
		{"wheel", func() (*Network, error) { return WheelProduct(6, 2) }, 36},
		{"caterpillar", func() (*Network, error) { return CaterpillarProduct(3, []int{1, 0, 1}, 2) }, 25},
		{"kautz", func() (*Network, error) { return KautzProduct(2, 1, 2) }, 36},
	}
	for _, c := range cases {
		nw, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if nw.Nodes() != c.nodes {
			t.Errorf("%s: nodes=%d want %d", c.name, nw.Nodes(), c.nodes)
		}
		keys := workload.Uniform(nw.Nodes(), 3)
		res, err := Sort(nw, keys)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !IsSorted(res.Keys) {
			t.Errorf("%s: unsorted", c.name)
		}
	}
}

func TestNewFamilyValidation(t *testing.T) {
	bad := []func() (*Network, error){
		func() (*Network, error) { return CirculantProduct(2, []int{1}, 2) },
		func() (*Network, error) { return CirculantProduct(6, []int{0}, 2) },
		func() (*Network, error) { return WheelProduct(3, 2) },
		func() (*Network, error) { return CaterpillarProduct(2, []int{1}, 2) },
		func() (*Network, error) { return CaterpillarProduct(1, []int{-1}, 2) },
		func() (*Network, error) { return KautzProduct(1, 1, 2) },
	}
	for i, f := range bad {
		if _, err := f(); err == nil {
			t.Errorf("case %d: invalid constructor accepted", i)
		}
	}
}

func TestRelabelDilation3(t *testing.T) {
	nw := mustNet(MeshConnectedTrees(4, 2)) // 15-node tree factor
	improved := RelabelDilation3(nw)
	keys := workload.Uniform(nw.Nodes(), 5)
	resA, err := Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Sort(improved, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(resA.Keys) || !IsSorted(resB.Keys) {
		t.Fatal("sort failed")
	}
	// Dilation-3 caps the per-pair distance, but congestion decides the
	// measured sweep cost, so neither labeling dominates the other; the
	// guarantee is only "within a constant of each other" (the labeling
	// ablation experiment quantifies this against shuffled labels).
	if resB.Rounds > 2*resA.Rounds || resA.Rounds > 2*resB.Rounds {
		t.Errorf("labelings differ by more than 2x: %d vs %d rounds", resB.Rounds, resA.Rounds)
	}
	// Hamiltonian networks are returned unchanged.
	h := mustNet(Grid(4, 2))
	if RelabelDilation3(h) != h {
		t.Error("Hamiltonian factor was relabeled")
	}
}

func TestSortMessagePassing(t *testing.T) {
	for _, nw := range []*Network{
		mustNet(Grid(3, 3)),
		mustNet(Hypercube(5)),
		mustNet(MeshConnectedTrees(3, 2)),
	} {
		keys := workload.Uniform(nw.Nodes(), 21)
		ref, err := Sort(nw, keys)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SortMessagePassing(nw, keys)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Keys {
			if got.Keys[i] != ref.Keys[i] {
				t.Fatalf("%s: SPMD diverged at %d", nw.Name(), i)
			}
		}
		if nw.HamiltonianFactor() && got.Relays != 0 {
			t.Errorf("%s: unexpected relays %d", nw.Name(), got.Relays)
		}
		if !nw.HamiltonianFactor() && got.Relays == 0 {
			t.Errorf("%s: expected relayed exchanges", nw.Name())
		}
		if got.Messages == 0 {
			t.Errorf("%s: no messages recorded", nw.Name())
		}
	}
	if _, err := SortMessagePassing(mustNet(Grid(3, 2)), make([]Key, 5)); err == nil {
		t.Error("wrong key count accepted")
	}
}

func TestExtractScheduleAndApply(t *testing.T) {
	nw := mustNet(Grid(3, 3))
	s, err := ExtractSchedule(nw, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if s.Inputs() != 27 || s.Depth() <= 0 || s.Size() <= 0 {
		t.Fatalf("degenerate schedule: %d/%d/%d", s.Inputs(), s.Depth(), s.Size())
	}
	keys := workload.Permutation(27, 9)
	s.Apply(keys)
	if !IsSorted(keys) {
		t.Fatal("schedule replay failed to sort")
	}
	if _, err := ExtractSchedule(nw, "bogus"); err == nil {
		t.Error("bogus engine accepted")
	}
}

func TestScheduleDepthEqualsSortRounds(t *testing.T) {
	// For Hamiltonian factors with no empty phases, the schedule depth
	// equals the machine's round count.
	nw := mustNet(Grid(3, 3))
	s, err := ExtractSchedule(nw, "shearsort")
	if err != nil {
		t.Fatal(err)
	}
	sorter, _ := NewSorter(WithEngine("shearsort"))
	res, err := sorter.Sort(nw, workload.Uniform(27, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != res.Rounds {
		t.Errorf("schedule depth %d != sort rounds %d", s.Depth(), res.Rounds)
	}
}

func TestSortBlocks(t *testing.T) {
	nw := mustNet(Hypercube(5))
	s, err := ExtractSchedule(nw, "auto")
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 3, 16} {
		keys := workload.Uniform(32*bs, int64(bs))
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		st, err := s.SortBlocks(keys, bs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("block=%d: wrong output at %d", bs, i)
			}
		}
		if st.Rounds != s.Depth() {
			t.Errorf("block=%d: rounds %d != depth %d", bs, st.Rounds, s.Depth())
		}
	}
	if _, err := s.SortBlocks(make([]Key, 10), 3); err == nil {
		t.Error("bad key count accepted")
	}
}

func TestRoutePermutation(t *testing.T) {
	nw := mustNet(Grid(4, 2))
	perm := make([]int, 16)
	for i := range perm {
		perm[i] = 15 - i
	}
	st, err := nw.RoutePermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < nw.Diameter() {
		t.Errorf("reversal routed in %d rounds, below diameter %d", st.Rounds, nw.Diameter())
	}
	if st.TotalHops <= 0 || st.MaxQueue < 1 {
		t.Errorf("stats degenerate: %+v", st)
	}
	if _, err := nw.RoutePermutation([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := nw.RoutePermutation(make([]int, 16)); err == nil {
		t.Error("non-permutation accepted")
	}
}

func TestScheduleMarshalJSON(t *testing.T) {
	nw := mustNet(Hypercube(3))
	s, err := ExtractSchedule(nw, "auto")
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '{' {
		t.Errorf("bad JSON: %.40s", data)
	}
}

func TestDOTOutputs(t *testing.T) {
	nw := mustNet(Grid(2, 2))
	if out := nw.DOT(); len(out) == 0 || out[0] != 'g' {
		t.Errorf("DOT: %.30s", out)
	}
	if out := nw.FactorDOT(); len(out) == 0 {
		t.Error("FactorDOT empty")
	}
	if nw.FactorSize() != 2 {
		t.Error("FactorSize wrong")
	}
}

func TestRenderWrongLength(t *testing.T) {
	nw := mustNet(Grid(2, 2))
	if out := nw.Render(make([]Key, 3)); out == "" {
		t.Error("no diagnostic for wrong length")
	}
}

func TestMergeSortedAndSortSequence(t *testing.T) {
	got, err := MergeSorted([][]Key{
		{0, 4, 4, 5, 5, 7, 8, 8, 9},
		{1, 4, 5, 5, 5, 6, 7, 7, 8},
		{0, 0, 1, 1, 1, 2, 3, 4, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(got) || len(got) != 27 {
		t.Fatalf("MergeSorted: %v", got)
	}
	keys := workload.Uniform(64, 9)
	sorted, err := SortSequence(keys, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(sorted) {
		t.Fatal("SortSequence failed")
	}
	if _, err := MergeSorted([][]Key{{1}}); err == nil {
		t.Error("single sequence accepted")
	}
	if _, err := SortSequence(keys, 3, 3); err == nil {
		t.Error("wrong size accepted")
	}
}
