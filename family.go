// Alternative network families at the root API: compile n-sorter
// multiway and periodic merging networks into the same CompiledNetwork
// surface the paper's product construction uses — one Sort/SortBatch/
// Certify stack, three constructions behind it. See DESIGN.md S32 for
// the emitter boundary and THEORY.md §16 for why the emitted networks
// sort.

package productsort

import (
	"errors"
	"fmt"

	"productsort/internal/emit"
	"productsort/internal/emit/multiway"
	"productsort/internal/emit/periodic"
	"productsort/internal/schedule"
)

// Network family names accepted by CompileFamily and
// ServerConfig.Families.
const (
	// FamilyProduct is the paper's generalized product-network
	// construction — the default family of Compile.
	FamilyProduct = emit.FamilyProduct
	// FamilyMultiway is the enhanced multiway sorting network built from
	// n-sorter primitives (arXiv 1407.0961).
	FamilyMultiway = emit.FamilyMultiway
	// FamilyPeriodic is the periodic balanced merging network
	// (arXiv 1409.1749 / Dowd-Perl-Rudolph-Saks).
	FamilyPeriodic = emit.FamilyPeriodic
)

// ErrUnsupportedFamily rejects operations that are specific to the
// product construction (fault-plan geometry, randomized pairwise
// engines over product edges) when called on an emitted-family network.
var ErrUnsupportedFamily = errors.New("productsort: operation requires a product-family network")

// MultiwaySorterWidth is the n-sorter width CompileMultiway uses; see
// CompileMultiwayN to choose another.
const MultiwaySorterWidth = multiway.DefaultSorter

// Family returns the construction family behind the compiled network:
// FamilyProduct for Compile, the emitter's family for CompileFamily/
// CompileMultiway/CompilePeriodic.
func (c *CompiledNetwork) Family() string {
	if c.family == "" {
		return FamilyProduct
	}
	return c.family
}

// CompileFamily compiles a sorting network of the named family over
// size keys, returning the same CompiledNetwork every backend, batch
// replay and certifier consumes. FamilyProduct selects the hypercube of
// the matching dimension; the emitted families build their programs
// directly. All three require size to be a power of two (the emitters'
// recursions interleave halves exactly; the product dispatch needs a
// hypercube dimension).
func CompileFamily(family string, size int) (*CompiledNetwork, error) {
	switch family {
	case FamilyProduct:
		if !emit.PowerOfTwo(size) || size < 2 {
			return nil, fmt.Errorf("productsort: family %q needs a power-of-two size >= 2, got %d", family, size)
		}
		r := 0
		for n := size; n > 1; n >>= 1 {
			r++
		}
		nw, err := Hypercube(r)
		if err != nil {
			return nil, err
		}
		return Compile(nw)
	case FamilyMultiway:
		return CompileMultiway(size)
	case FamilyPeriodic:
		return CompilePeriodic(size)
	}
	return nil, fmt.Errorf("productsort: unknown network family %q", family)
}

// CompileMultiway compiles the n-sorter multiway network over size keys
// (power of two) with the default sorter width.
func CompileMultiway(size int) (*CompiledNetwork, error) {
	return CompileMultiwayN(size, MultiwaySorterWidth)
}

// CompileMultiwayN compiles the n-sorter multiway network over size
// keys using sorter-wide primitives; both must be powers of two.
func CompileMultiwayN(size, sorter int) (*CompiledNetwork, error) {
	prog, err := multiway.EmitN(size, sorter)
	if err != nil {
		return nil, err
	}
	return emittedNetwork(prog, FamilyMultiway), nil
}

// CompilePeriodic compiles the periodic balanced merging network over
// size keys (power of two): log2(size) identical comparator-column
// passes, log2(size) columns each.
func CompilePeriodic(size int) (*CompiledNetwork, error) {
	prog, err := periodic.Emit(size)
	if err != nil {
		return nil, err
	}
	return emittedNetwork(prog, FamilyPeriodic), nil
}

// emittedNetwork wraps an emitted program as a CompiledNetwork over its
// 1-D line host (node id == snake position, so Sort's snake-order
// contract is the identity layout).
func emittedNetwork(prog *schedule.Program, family string) *CompiledNetwork {
	return &CompiledNetwork{nw: &Network{net: prog.Net()}, prog: prog, family: family}
}
