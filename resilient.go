// Fault-tolerant sorting: the public face of the deterministic fault
// injection and self-healing replay machinery (internal/faults,
// schedule.ResilientBackend).

package productsort

import (
	"errors"
	"fmt"

	"productsort/internal/faults"
	"productsort/internal/schedule"
)

// ErrUnrecoverable reports that fault recovery was exhausted: a key
// corruption survived every retry, or the repair budget ran out before
// the output sorted. The accompanying Result still carries the full
// fault accounting.
var ErrUnrecoverable = schedule.ErrUnrecoverable

// DeadLink names one factor-graph edge forced dead for a whole run:
// the dimension (1-based) and the factor edge's endpoints.
type DeadLink struct {
	Dim, U, V int
}

// FaultConfig configures deterministic fault injection for
// SortResilient. Rates are per-decision probabilities in [0, 1]; the
// zero value injects nothing. Every fault is a pure function of Seed,
// so a run is exactly reproducible — same seed, same faults, same
// recovery, same counters.
type FaultConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// DropRate is the chance a pair's key exchange is lost in flight
	// (it is retransmitted, at a round's cost per attempt).
	DropRate float64
	// StallRate is the chance a processor sits out a round (its
	// exchanges wait, a round's cost per stalled round).
	StallRate float64
	// CorruptRate is the chance a phase flips one bit of one key
	// (detected by checksum scrub, healed by checkpoint retry).
	CorruptRate float64
	// LinkFailRate kills factor-graph links at bind time (bridges are
	// spared so factors stay connected); affected exchanges reroute.
	LinkFailRate float64
	// MaxDeadLinks caps the rate-chosen dead links per factor
	// (0 = no cap).
	MaxDeadLinks int
	// DeadLinks forces specific factor edges dead. A link that does
	// not exist or whose loss would disconnect the factor is an error.
	DeadLinks []DeadLink
	// CheckpointEvery is the checkpoint interval K in exchange phases
	// (<1 = default 16); see THEORY.md for the overhead trade-off.
	CheckpointEvery int
	// MaxRetries bounds full-window retries before the window is
	// halved (<1 = default 3).
	MaxRetries int
	// MaxRepairPasses bounds whole-program repair replays after the
	// final sortedness scrub (<1 = default 3).
	MaxRepairPasses int
}

// FaultConfigError reports one invalid FaultConfig field, named so a
// caller (or its operator) can see exactly which knob is wrong instead
// of decoding a mid-replay panic.
type FaultConfigError struct {
	// Field is the offending FaultConfig field, e.g. "DropRate" or
	// "DeadLinks[2].Dim".
	Field string
	// Reason describes the violation.
	Reason string
}

// Error implements error.
func (e *FaultConfigError) Error() string {
	return fmt.Sprintf("productsort: fault config %s: %s", e.Field, e.Reason)
}

// validate checks cfg up front against a network with dims dimensions.
// Rates must be probabilities in [0, 1] (NaN included in the
// rejection); count fields must not be negative (zero keeps the
// documented default, preserving the zero-value = fault-free
// contract); forced dead links must name a real dimension.
func (cfg FaultConfig) validate(dims int) error {
	rates := []struct {
		name string
		v    float64
	}{
		{"DropRate", cfg.DropRate},
		{"StallRate", cfg.StallRate},
		{"CorruptRate", cfg.CorruptRate},
		{"LinkFailRate", cfg.LinkFailRate},
	}
	for _, r := range rates {
		if !(r.v >= 0 && r.v <= 1) { // negated to catch NaN
			return &FaultConfigError{Field: r.name, Reason: fmt.Sprintf("rate %v outside [0, 1]", r.v)}
		}
	}
	counts := []struct {
		name string
		v    int
	}{
		{"MaxDeadLinks", cfg.MaxDeadLinks},
		{"CheckpointEvery", cfg.CheckpointEvery},
		{"MaxRetries", cfg.MaxRetries},
		{"MaxRepairPasses", cfg.MaxRepairPasses},
	}
	for _, c := range counts {
		if c.v < 0 {
			return &FaultConfigError{Field: c.name, Reason: fmt.Sprintf("negative value %d (0 selects the default)", c.v)}
		}
	}
	for i, dl := range cfg.DeadLinks {
		if dl.Dim < 1 || dl.Dim > dims {
			return &FaultConfigError{
				Field:  fmt.Sprintf("DeadLinks[%d].Dim", i),
				Reason: fmt.Sprintf("dimension %d outside [1, %d]", dl.Dim, dims),
			}
		}
	}
	return nil
}

// plan validates cfg and builds its fault plan.
func (cfg FaultConfig) plan(dims int) (*faults.Plan, error) {
	if err := cfg.validate(dims); err != nil {
		return nil, err
	}
	fc := faults.Config{
		Seed:         cfg.Seed,
		DropRate:     cfg.DropRate,
		StallRate:    cfg.StallRate,
		CorruptRate:  cfg.CorruptRate,
		LinkFailRate: cfg.LinkFailRate,
		MaxDeadLinks: cfg.MaxDeadLinks,
	}
	for _, dl := range cfg.DeadLinks {
		fc.DeadLinks = append(fc.DeadLinks, faults.FactorEdge{Dim: dl.Dim, U: dl.U, V: dl.V})
	}
	return faults.NewPlan(fc), nil
}

// FaultReport surfaces what was injected and what recovery did (and
// cost) during one resilient sort.
type FaultReport struct {
	// Injected totals every realized fault.
	Injected int
	// Dropped, Stalled, Corrupted and DeadLinks break the injections
	// down by kind.
	Dropped, Stalled, Corrupted, DeadLinks int
	// Detected counts scrub detections (checksum or sortedness).
	Detected int
	// Retried counts retransmissions and window retries.
	Retried int
	// RepairPasses counts whole-program repair replays.
	RepairPasses int
	// Rerouted counts exchanges forced onto detours by dead links.
	Rerouted int
	// Unrecoverable counts faults recovery had to give up on.
	Unrecoverable int
	// RecoveryRounds is the extra parallel time recovery cost,
	// included in Result.Rounds.
	RecoveryRounds int
}

// SortResilient replays the compiled program over keys (snake order,
// like Sort) under deterministic fault injection with self-healing
// recovery: checkpoint every K phases, checksum scrubbing, bounded
// retry from checkpoint with window-halving backoff, stall waits and
// drop retransmissions charged as rounds, rerouting (with degraded
// round pricing) around dead links, and a final sortedness scrub with
// bounded repair replays. The Result's Rounds includes the recovery
// cost, and Result.Faults reports the full accounting.
//
// A zero cfg injects nothing and is equivalent to Sort. On exhausted
// recovery the keys-so-far and the report are returned alongside
// ErrUnrecoverable.
func (c *CompiledNetwork) SortResilient(keys []Key, cfg FaultConfig) (*Result, error) {
	if f := c.Family(); f != FamilyProduct {
		// Fault-plan geometry and dead-link rerouting are defined over
		// product-network edges; emitted comparator columns pair
		// arbitrary lines of a 1-D host.
		return nil, fmt.Errorf("productsort: SortResilient on %s network: %w", f, ErrUnsupportedFamily)
	}
	if len(keys) != c.nw.Nodes() {
		return nil, fmt.Errorf("productsort: %d keys for %d nodes", len(keys), c.nw.Nodes())
	}
	plan, err := cfg.plan(c.nw.Dims())
	if err != nil {
		return nil, err
	}
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[c.nw.net.NodeAtSnake(pos)] = k
	}
	rb := schedule.ResilientBackend{
		Inner:           schedule.ExecBackend{Exec: c.exec, Tracer: c.tracer},
		Plan:            plan,
		CheckpointEvery: cfg.CheckpointEvery,
		MaxRetries:      cfg.MaxRetries,
		MaxRepairPasses: cfg.MaxRepairPasses,
		Tracer:          c.tracer,
	}
	clk, err := rb.Run(c.prog, byNode)
	if err != nil && !errors.Is(err, ErrUnrecoverable) {
		return nil, err
	}
	res := newResult(c.nw, clk, c.prog.Engine(), byNode)
	fr := &FaultReport{
		Injected:       clk.Faults.Injected,
		Dropped:        clk.Faults.Dropped,
		Stalled:        clk.Faults.Stalled,
		Corrupted:      clk.Faults.Corrupted,
		DeadLinks:      clk.Faults.DeadLinks,
		Detected:       clk.Faults.Detected,
		Retried:        clk.Faults.Retried,
		RepairPasses:   clk.Faults.RepairPasses,
		Rerouted:       clk.Faults.Rerouted,
		Unrecoverable:  clk.Faults.Unrecoverable,
		RecoveryRounds: clk.RecoveryRounds,
	}
	res.Faults = fr
	return res, err
}
