// Blocksort: the keys ≫ processors regime. The sorting algorithm is
// oblivious, so its compare-exchange schedule can be extracted once and
// replayed with merge-split operators: each of the 64 processors then
// holds a whole block of keys, and the parallel round count does not
// change as the blocks grow.
package main

import (
	"fmt"
	"log"

	"productsort"
	"productsort/internal/workload"
)

func main() {
	nw, err := productsort.Grid(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := productsort.ExtractSchedule(nw, "auto")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule extracted from %s: %d processors, %d phases, %d comparators\n\n",
		nw.Name(), sched.Inputs(), sched.Depth(), sched.Size())

	fmt.Printf("%-12s %-12s %-8s %-12s %-8s\n", "block size", "total keys", "rounds", "keys moved", "sorted")
	for _, bs := range []int{1, 8, 64, 256} {
		keys := workload.Uniform(sched.Inputs()*bs, int64(bs))
		st, err := sched.SortBlocks(keys, bs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %-12d %-8d %-12d %-8v\n",
			bs, sched.Inputs()*bs, st.Rounds, st.KeysMoved, productsort.IsSorted(keys))
	}
	fmt.Println("\n16384 keys sorted in the same 82 parallel rounds as 64 keys:")
	fmt.Println("block size buys throughput without any extra communication rounds.")
}
