// Gridsort: Section 5.1 from a user's point of view — sort on
// r-dimensional grids of growing side N and watch the cost stay linear
// in N for fixed r (the paper's asymptotically optimal case).
package main

import (
	"fmt"
	"log"

	"productsort"
	"productsort/internal/workload"
)

func main() {
	fmt.Println("grid sorting cost, r fixed (paper: O(N), optimal for bounded r)")
	fmt.Printf("%-10s %-8s %-8s %-10s %-10s\n", "grid", "nodes", "rounds", "rounds/N", "predicted")
	for _, r := range []int{2, 3} {
		for _, n := range []int{3, 4, 6, 8, 12} {
			nw, err := productsort.Grid(n, r)
			if err != nil {
				log.Fatal(err)
			}
			keys := workload.Uniform(nw.Nodes(), 7)
			res, err := productsort.Sort(nw, keys)
			if err != nil {
				log.Fatal(err)
			}
			if !productsort.IsSorted(res.Keys) {
				log.Fatalf("%s: unsorted output", nw.Name())
			}
			pred, err := nw.PredictedRounds("auto")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8d %-8d %-10.2f %-10d\n",
				nw.Name(), nw.Nodes(), res.Rounds, float64(res.Rounds)/float64(n), pred)
		}
		fmt.Println()
	}
	fmt.Println("rounds/N grows only with the S2 engine's log factor; the")
	fmt.Println("r-dependence is (r-1)^2 exactly as Theorem 1 predicts.")
}
