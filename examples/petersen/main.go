// Petersen: sort on the Petersen cube with real message-passing
// goroutines per processor, tracing the algorithm's stages with an
// observer — the closest this simulator gets to watching 100 processors
// cooperate.
package main

import (
	"fmt"
	"log"

	"productsort"
	"productsort/internal/workload"
)

func main() {
	nw, err := productsort.PetersenCube(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d processors, degree-6, diameter %d\n\n", nw.Name(), nw.Nodes(), nw.Diameter())

	s, err := productsort.NewSorter(
		productsort.WithGoroutines(),
		productsort.WithObserver(func(stage string, keys []productsort.Key) {
			fmt.Printf("stage: %-55s first keys now %v\n", stage, keys[:8])
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	keys := workload.OrganPipe(nw.Nodes(), 0)
	res, err := s.Sort(nw, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsorted=%v rounds=%d (S2 phases %d, sweeps %d)\n",
		productsort.IsSorted(res.Keys), res.Rounds, res.S2Phases, res.Sweeps)
	fmt.Println("every compare-exchange ran as a pair of goroutines exchanging keys over channels")
}
