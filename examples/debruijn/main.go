// Debruijn: the portability claim of the paper — the *same* Sort call
// runs unchanged on products of de Bruijn graphs, shuffle-exchange
// graphs, Petersen graphs, tori, and mesh-connected trees.
package main

import (
	"fmt"
	"log"

	"productsort"
	"productsort/internal/workload"
)

func main() {
	nets := []struct {
		name  string
		build func() (*productsort.Network, error)
	}{
		{"de Bruijn product", func() (*productsort.Network, error) { return productsort.DeBruijnProduct(2, 3, 2) }},
		{"shuffle-exchange product", func() (*productsort.Network, error) { return productsort.ShuffleExchangeProduct(3, 2) }},
		{"Petersen cube", func() (*productsort.Network, error) { return productsort.PetersenCube(2) }},
		{"torus", func() (*productsort.Network, error) { return productsort.Torus(5, 3) }},
		{"mesh-connected trees", func() (*productsort.Network, error) { return productsort.MeshConnectedTrees(3, 2) }},
	}
	fmt.Println("one algorithm, every product network:")
	fmt.Printf("%-26s %-20s %-7s %-7s %-7s %-7s\n", "family", "instance", "nodes", "rounds", "routed", "sorted")
	for _, cfg := range nets {
		nw, err := cfg.build()
		if err != nil {
			log.Fatal(err)
		}
		keys := workload.Gaussianish(nw.Nodes(), 11)
		res, err := productsort.Sort(nw, keys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-20s %-7d %-7d %-7d %-7v\n",
			cfg.name, nw.Name(), nw.Nodes(), res.Rounds, res.RoutedPhases,
			productsort.IsSorted(res.Keys))
	}
	fmt.Println("\nrouted > 0 marks non-Hamiltonian factors (trees), where the")
	fmt.Println("algorithm falls back to permutation routing exactly as in Section 4.")
}
