// Quickstart: sort 64 keys on a 4×4×4 grid with the generalized
// multiway-merge algorithm and inspect the parallel cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"productsort"
)

func main() {
	// A 3-dimensional grid is the product of three 4-node paths.
	nw, err := productsort.Grid(4, 3)
	if err != nil {
		log.Fatal(err)
	}

	// One key per processor; keys[i] starts at snake position i.
	rng := rand.New(rand.NewSource(2026))
	keys := make([]productsort.Key, nw.Nodes())
	for i := range keys {
		keys[i] = productsort.Key(rng.Intn(1000))
	}

	res, err := productsort.Sort(nw, keys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %s — %d processors, diameter %d\n", nw.Name(), nw.Nodes(), nw.Diameter())
	fmt.Printf("sorted:  %v\n", productsort.IsSorted(res.Keys))
	fmt.Printf("first 16 keys in snake order: %v\n", res.Keys[:16])
	fmt.Printf("parallel rounds: %d (PG_2 sorting %d + transposition sweeps %d)\n",
		res.Rounds, res.S2Rounds, res.SweepRounds)
	fmt.Printf("Theorem 1 phases: %d S2 invocations = (r-1)^2, %d sweeps = (r-1)(r-2)\n",
		res.S2Phases, res.Sweeps)
}
