// Rectgrid: the heterogeneous-product extension. The paper analyzes
// homogeneous products; this library generalizes the algorithm to mixed
// factor sizes (the dirty-window analysis requires nonincreasing sizes
// above dimension 1), which makes arbitrary rectangular grids sortable —
// the most common parallel machine shape in practice.
package main

import (
	"fmt"
	"log"

	"productsort"
	"productsort/internal/workload"
)

func main() {
	nw, err := productsort.RectGrid(8, 4, 2) // 8×4×2 grid, 64 processors
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %s: %d processors, radices %v, diameter %d\n\n",
		nw.Name(), nw.Nodes(), nw.Radices(), nw.Diameter())

	keys := workload.OrganPipe(nw.Nodes(), 0)
	res, err := productsort.Sort(nw, keys)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := nw.PredictedRounds("auto")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted=%v rounds=%d predicted=%d (exact: the generalized Theorem 1)\n\n",
		productsort.IsSorted(res.Keys), res.Rounds, pred)
	fmt.Println("sorted keys in the snake layout (x = dim 1, y = dim 2, slabs = dim 3):")
	fmt.Print(nw.Render(res.Keys))

	// Width sweep: rounds grow with the long side only.
	fmt.Println("\nW×4 grids: cost follows the long side")
	fmt.Printf("%-6s %-8s %-8s\n", "W", "nodes", "rounds")
	for _, w := range []int{4, 8, 16, 32} {
		g, err := productsort.RectGrid(w, 4)
		if err != nil {
			log.Fatal(err)
		}
		r, err := productsort.Sort(g, workload.Uniform(g.Nodes(), 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-8d %-8d\n", w, g.Nodes(), r.Rounds)
	}
}
