// Hypercube: Section 5.3 — on the product of K2 factors the generalized
// algorithm matches Batcher's O(r²) asymptotic; its exact round count is
// 3(r-1)² + (r-1)(r-2), verified here for r up to 10 (1024 processors).
package main

import (
	"fmt"
	"log"

	"productsort"
	"productsort/internal/workload"
)

func main() {
	fmt.Println("hypercube sorting: measured rounds vs the paper's closed form")
	fmt.Printf("%-4s %-8s %-8s %-22s %-14s\n", "r", "nodes", "rounds", "3(r-1)^2+(r-1)(r-2)", "batcher r(r+1)/2")
	for r := 2; r <= 10; r++ {
		nw, err := productsort.Hypercube(r)
		if err != nil {
			log.Fatal(err)
		}
		keys := workload.Reverse(nw.Nodes(), 0) // hardest classical input
		res, err := productsort.Sort(nw, keys)
		if err != nil {
			log.Fatal(err)
		}
		if !productsort.IsSorted(res.Keys) {
			log.Fatalf("r=%d: unsorted", r)
		}
		paper := 3*(r-1)*(r-1) + (r-1)*(r-2)
		if res.Rounds != paper {
			log.Fatalf("r=%d: measured %d != paper %d", r, res.Rounds, paper)
		}
		fmt.Printf("%-4d %-8d %-8d %-22d %-14d\n", r, nw.Nodes(), res.Rounds, paper, r*(r+1)/2)
	}
	fmt.Println("\nBatcher's odd-even merge is the special case N=2 of the")
	fmt.Println("generalized algorithm; the constant gap buys topology independence.")
}
