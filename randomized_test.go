package productsort

import (
	"errors"
	"sort"
	"testing"
)

func TestSortRandomizedConverges(t *testing.T) {
	nw, err := Grid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"uniform", "dim-weighted", "snake-biased"} {
		t.Run(q, func(t *testing.T) {
			keys := shuffled(nw.Nodes(), 11)
			want := append([]Key(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			res, err := c.SortRandomized(keys, RandomizedConfig{Q: q, Seed: 1})
			if err != nil {
				t.Fatalf("SortRandomized: %v", err)
			}
			if !IsSorted(res.Keys) {
				t.Fatal("output not sorted")
			}
			for i := range want {
				if res.Keys[i] != want[i] {
					t.Fatal("key multiset changed")
				}
			}
			r := res.Random
			if r == nil || !r.Converged || !r.VerifierAccepted || !r.ScrubSorted {
				t.Fatalf("incomplete acceptance: %+v", r)
			}
			if r.Variant != q {
				t.Fatalf("variant %q, want %q", r.Variant, q)
			}
			if res.Engine != "randsort-"+q {
				t.Fatalf("engine %q", res.Engine)
			}
			if res.Rounds != r.RoundCharge || res.Rounds < r.Rounds {
				t.Fatalf("round accounting inconsistent: Result %d, report %+v", res.Rounds, r)
			}
			if res.Faults != nil {
				t.Fatalf("fault report without faults: %+v", res.Faults)
			}
		})
	}
}

func TestSortRandomizedUnderFaults(t *testing.T) {
	nw, err := Grid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	keys := shuffled(nw.Nodes(), 4)
	res, err := c.SortRandomized(keys, RandomizedConfig{
		Q:    "snake-biased",
		Seed: 2,
		Faults: FaultConfig{
			Seed:      9,
			DropRate:  0.4,
			StallRate: 0.2,
		},
	})
	if err != nil {
		t.Fatalf("faulted randomized sort aborted: %v", err)
	}
	if !IsSorted(res.Keys) || !res.Random.Converged {
		t.Fatalf("did not converge sorted: %+v", res.Random)
	}
	if res.Faults == nil || res.Faults.Dropped == 0 || res.Faults.Stalled == 0 {
		t.Fatalf("fault accounting missing: %+v", res.Faults)
	}
}

func TestSortRandomizedRoundCap(t *testing.T) {
	nw, err := Grid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SortRandomized(shuffled(nw.Nodes(), 8), RandomizedConfig{Seed: 3, MaxRounds: 2})
	if !errors.Is(err, ErrRoundCap) {
		t.Fatalf("want ErrRoundCap, got %v", err)
	}
	if res == nil || res.Random == nil || res.Random.Converged {
		t.Fatalf("cap should return the degraded result: %+v", res)
	}
}

func TestSortRandomizedRejectsBadConfig(t *testing.T) {
	nw, err := Grid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SortRandomized(shuffled(nw.Nodes(), 1), RandomizedConfig{Q: "bogus"}); err == nil {
		t.Error("unknown q variant accepted")
	}
	if _, err := c.SortRandomized(shuffled(nw.Nodes(), 1), RandomizedConfig{MaxRounds: -5}); err == nil {
		t.Error("negative MaxRounds accepted")
	}
	if _, err := c.SortRandomized(make([]Key, 3), RandomizedConfig{}); err == nil {
		t.Error("short key slice accepted")
	}
}

func TestSortRandomizedDeterministic(t *testing.T) {
	nw, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RandomizedConfig{Q: "uniform", Seed: 6, Faults: FaultConfig{Seed: 1, DropRate: 0.3}}
	a, err := c.SortRandomized(shuffled(nw.Nodes(), 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SortRandomized(shuffled(nw.Nodes(), 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Random != *b.Random {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Random, b.Random)
	}
}
