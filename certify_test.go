package productsort

import (
	"testing"
)

// TestCertifyHypercube runs the public certification path end to end:
// an exhaustive proof on a 16-key network.
func TestCertifyHypercube(t *testing.T) {
	nw, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	crt, err := c.Certify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !crt.Certified || !crt.Exhaustive {
		t.Fatalf("hypercube^4 failed certification: %+v (witness %+v)", crt, crt.Witness)
	}
	if crt.Keys != 16 || crt.Vectors != 1<<16 {
		t.Fatalf("coverage accounting wrong: %+v", crt)
	}
	if crt.Comparators != c.Size() {
		t.Fatalf("comparators %d != program size %d", crt.Comparators, c.Size())
	}
	if crt.Witness != nil {
		t.Fatalf("certified run carries a witness: %+v", crt.Witness)
	}
}

// TestCertifySampled exercises the public sampling path above the
// exhaustive envelope.
func TestCertifySampled(t *testing.T) {
	nw, err := Grid(3, 3) // 27 keys: above a 16-key envelope
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	crt, err := c.Certify(&CertifyOptions{MaxExhaustiveKeys: 16, SampleVectors: 1 << 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if crt.Exhaustive {
		t.Fatal("27-key network reported exhaustive under a 16-key envelope")
	}
	if !crt.Certified {
		t.Fatalf("correct program failed sampled certification: witness %+v", crt.Witness)
	}
	if crt.Vectors < 1<<12 {
		t.Fatalf("sampled too few vectors: %d", crt.Vectors)
	}
}
