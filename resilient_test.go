package productsort

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func shuffled(n int, seed int64) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(i)
	}
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	return keys
}

func TestSortResilientQuietMatchesSort(t *testing.T) {
	nw, err := Torus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	keys := shuffled(nw.Nodes(), 1)
	plain, err := c.Sort(append([]Key(nil), keys...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SortResilient(append([]Key(nil), keys...), FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != plain.Rounds {
		t.Errorf("quiet resilient rounds %d != %d", res.Rounds, plain.Rounds)
	}
	if res.Faults.Injected != 0 || res.Faults.RecoveryRounds != 0 {
		t.Errorf("quiet run reported faults: %+v", res.Faults)
	}
	for i := range plain.Keys {
		if res.Keys[i] != plain.Keys[i] {
			t.Fatal("quiet resilient sort diverged from Sort")
		}
	}
}

func TestSortResilientHealsFaults(t *testing.T) {
	nw, err := MeshConnectedTrees(2, 2) // non-Hamiltonian factor: routed sweeps
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	keys := shuffled(nw.Nodes(), 2)
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	cfg := FaultConfig{Seed: 77, DropRate: 0.05, StallRate: 0.03, CorruptRate: 0.05}
	res, err := c.SortResilient(keys, cfg)
	if err != nil {
		t.Fatalf("%v (report %+v)", err, res)
	}
	if !IsSorted(res.Keys) {
		t.Fatal("resilient sort output not sorted")
	}
	for i := range want {
		if res.Keys[i] != want[i] {
			t.Fatal("resilient sort corrupted the key multiset")
		}
	}
	if res.Faults == nil || res.Faults.Injected == 0 {
		t.Fatalf("no faults reported at 5%% rates: %+v", res.Faults)
	}
	if res.Faults.RecoveryRounds == 0 {
		t.Error("recovery cost no rounds despite injections")
	}
	if res.Rounds <= c.Rounds() {
		t.Errorf("faulted rounds %d not above fault-free %d", res.Rounds, c.Rounds())
	}

	// Determinism at the API level: same seed, same everything.
	res2, err := c.SortResilient(shuffled(nw.Nodes(), 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *res.Faults != *res2.Faults || res.Rounds != res2.Rounds {
		t.Errorf("same seed, reports diverged:\n%+v\n%+v", res.Faults, res2.Faults)
	}
}

func TestSortResilientDeadLink(t *testing.T) {
	nw, err := Torus(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SortResilient(shuffled(nw.Nodes(), 3), FaultConfig{
		Seed:      5,
		DeadLinks: []DeadLink{{Dim: 2, U: 1, V: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(res.Keys) {
		t.Fatal("degraded sort output not sorted")
	}
	if res.Faults.DeadLinks != 1 || res.Faults.Rerouted == 0 {
		t.Errorf("dead-link accounting wrong: %+v", res.Faults)
	}
	if res.Rounds <= c.Rounds() {
		t.Errorf("degraded rounds %d not above intact %d", res.Rounds, c.Rounds())
	}

	// A disconnecting dead link is refused up front.
	if _, err := c.SortResilient(shuffled(nw.Nodes(), 3), FaultConfig{
		DeadLinks: []DeadLink{{Dim: 1, U: 0, V: 3}},
	}); err == nil {
		t.Error("non-edge dead link accepted")
	}
}

func TestSortResilientRejectsInvalidConfig(t *testing.T) {
	nw, err := Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		cfg   FaultConfig
		field string
	}{
		{"DropRate above 1", FaultConfig{DropRate: 1.5}, "DropRate"},
		{"negative DropRate", FaultConfig{DropRate: -0.2}, "DropRate"},
		{"negative StallRate", FaultConfig{StallRate: -0.01}, "StallRate"},
		{"StallRate above 1", FaultConfig{StallRate: 2}, "StallRate"},
		{"negative CorruptRate", FaultConfig{CorruptRate: -0.1}, "CorruptRate"},
		{"CorruptRate NaN", FaultConfig{CorruptRate: math.NaN()}, "CorruptRate"},
		{"LinkFailRate above 1", FaultConfig{LinkFailRate: 1.01}, "LinkFailRate"},
		{"negative MaxDeadLinks", FaultConfig{MaxDeadLinks: -1}, "MaxDeadLinks"},
		{"negative CheckpointEvery", FaultConfig{CheckpointEvery: -4}, "CheckpointEvery"},
		{"negative MaxRetries", FaultConfig{MaxRetries: -1}, "MaxRetries"},
		{"negative MaxRepairPasses", FaultConfig{MaxRepairPasses: -2}, "MaxRepairPasses"},
		{"dead link dim zero", FaultConfig{DeadLinks: []DeadLink{{Dim: 0, U: 0, V: 1}}}, "DeadLinks[0].Dim"},
		{"dead link dim too large", FaultConfig{
			DeadLinks: []DeadLink{{Dim: 1, U: 0, V: 1}, {Dim: 4, U: 0, V: 1}},
		}, "DeadLinks[1].Dim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.SortResilient(shuffled(nw.Nodes(), 1), tc.cfg)
			var fce *FaultConfigError
			if !errors.As(err, &fce) {
				t.Fatalf("want *FaultConfigError, got %v", err)
			}
			if fce.Field != tc.field {
				t.Fatalf("want field %q, got %q (%v)", tc.field, fce.Field, err)
			}
			if msg := fce.Error(); !strings.Contains(msg, tc.field) {
				t.Fatalf("error message %q omits the field", msg)
			}
			// SortRandomized shares the validation.
			_, err = c.SortRandomized(shuffled(nw.Nodes(), 1), RandomizedConfig{Faults: tc.cfg})
			if !errors.As(err, &fce) || fce.Field != tc.field {
				t.Fatalf("SortRandomized: want *FaultConfigError{%s}, got %v", tc.field, err)
			}
		})
	}
	// Zero config stays valid: the zero-value = fault-free contract.
	if err := (FaultConfig{}).validate(nw.Dims()); err != nil {
		t.Fatalf("zero FaultConfig rejected: %v", err)
	}
}
