package productsort

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace parses Chrome trace_event JSON and returns the complete
// ("X") event count and the sum of their round charges.
func decodeTrace(t *testing.T, data []byte) (phases, rounds int) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		phases++
		r, ok := ev.Args["rounds"].(float64)
		if !ok {
			t.Fatalf("X event without rounds arg: %+v", ev)
		}
		rounds += int(r)
	}
	return phases, rounds
}

// TestTracedSortPG3 is the acceptance path: a traced sort on the 4×4×4
// grid (a PG_3 instance) produces a valid Chrome trace whose per-phase
// round charges sum to exactly the clock's total, with the metrics
// registry agreeing on every shared quantity.
func TestTracedSortPG3(t *testing.T) {
	nw, err := Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder()
	metrics := NewMetrics()
	s, err := NewSorter(WithTracer(MultiTracer(rec, NewMetricsCollector(metrics))))
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Sort(shuffled(nw.Nodes(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(res.Keys) {
		t.Fatal("output not sorted")
	}
	if got := rec.RoundTotal(); got != res.Rounds {
		t.Errorf("recorder total %d != result rounds %d", got, res.Rounds)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(rec, &buf); err != nil {
		t.Fatal(err)
	}
	phases, rounds := decodeTrace(t, buf.Bytes())
	if phases != rec.Phases() {
		t.Errorf("trace has %d X events, recorder saw %d phases", phases, rec.Phases())
	}
	if rounds != res.Rounds {
		t.Errorf("trace round sum %d != result rounds %d", rounds, res.Rounds)
	}
	snap := metrics.Snapshot()
	if got := snap.Counters["rounds.total"]; got != int64(res.Rounds) {
		t.Errorf("metrics rounds.total = %d, want %d", got, res.Rounds)
	}
	if got := snap.Counters["rounds.s2"]; got != int64(res.S2Rounds) {
		t.Errorf("metrics rounds.s2 = %d, want %d", got, res.S2Rounds)
	}
	if got := snap.Counters["rounds.sweep"]; got != int64(res.SweepRounds) {
		t.Errorf("metrics rounds.sweep = %d, want %d", got, res.SweepRounds)
	}
	if got := snap.Counters["phases.total"]; got != int64(rec.Phases()) {
		t.Errorf("metrics phases.total = %d, recorder saw %d", got, rec.Phases())
	}
}

// TestTracedObserverPathMatchesCompiled: the live-machine path (taken
// when an observer is attached) emits the same round total as the
// compiled replay.
func TestTracedObserverPathMatchesCompiled(t *testing.T) {
	nw, err := Grid(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder()
	s, err := NewSorter(
		WithTracer(rec),
		WithObserver(func(string, []Key) {}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sort(nw, shuffled(nw.Nodes(), 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.RoundTotal(); got != res.Rounds {
		t.Errorf("observer-path recorder total %d != result rounds %d", got, res.Rounds)
	}
}

// TestTracedSortResilient: a chaos run's recovery events account for
// exactly the recovery rounds the report charges, and the trace still
// decodes as valid JSON with the recovery instants embedded.
func TestTracedSortResilient(t *testing.T) {
	nw, err := Grid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder()
	metrics := NewMetrics()
	s, err := NewSorter(WithTracer(MultiTracer(rec, NewMetricsCollector(metrics))))
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SortResilient(shuffled(nw.Nodes(), 9), FaultConfig{
		Seed: 13, DropRate: 0.03, StallRate: 0.02, CorruptRate: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || res.Faults.Injected == 0 {
		t.Fatal("chaos config injected nothing; seed/rates too low for this test")
	}
	if got := rec.RecoveryRounds(); got != res.Faults.RecoveryRounds {
		t.Errorf("recovery events carry %d rounds, report charged %d", got, res.Faults.RecoveryRounds)
	}
	// Retried windows replay phases through the traced inner backend, so
	// the phase stream covers at least the base program's rounds.
	if base := res.Rounds - res.Faults.RecoveryRounds; rec.RoundTotal() < base {
		t.Errorf("phase events sum to %d rounds, below the %d base rounds", rec.RoundTotal(), base)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(rec, &buf); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, buf.Bytes())
	if got := metrics.Snapshot().Counters["recovery.rounds"]; got != int64(res.Faults.RecoveryRounds) {
		t.Errorf("metrics recovery.rounds = %d, want %d", got, res.Faults.RecoveryRounds)
	}
}

// TestUntracedSortUnchanged: without WithTracer nothing is emitted and
// results are identical to a traced run (tracing must not perturb the
// replay).
func TestUntracedSortUnchanged(t *testing.T) {
	nw, err := Grid(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Sort(nw, shuffled(nw.Nodes(), 7))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder()
	s, err := NewSorter(WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := s.Sort(nw, shuffled(nw.Nodes(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rounds != traced.Rounds {
		t.Errorf("tracing changed rounds: %d vs %d", plain.Rounds, traced.Rounds)
	}
	for i := range plain.Keys {
		if plain.Keys[i] != traced.Keys[i] {
			t.Fatalf("tracing changed keys at %d", i)
		}
	}
}
