package productsort_test

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"productsort"
)

func serverKeys(n int, seed int64) []productsort.Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]productsort.Key, n)
	for i := range keys {
		keys[i] = productsort.Key(rng.Intn(4*n+1) - n)
	}
	return keys
}

// TestServerSortsArbitrarySizes: the default server sorts every size up
// to a few hundred keys, agreeing with the reference sort.
func TestServerSortsArbitrarySizes(t *testing.T) {
	s, err := productsort.NewServer(productsort.ServerConfig{
		MaxKeys:   256,
		MaxLinger: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	for _, n := range []int{1, 2, 3, 5, 16, 17, 100, 256} {
		in := serverKeys(n, int64(n))
		got, err := s.SortKeys(context.Background(), in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := append([]productsort.Key(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got %v, want %v", n, got, want)
			}
		}
	}
}

// TestServerDefaults: the zero config covers 4096 keys and rejects
// beyond that with the typed error.
func TestServerDefaults(t *testing.T) {
	s, err := productsort.NewServer(productsort.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	if got := s.MaxKeys(); got < 4096 {
		t.Fatalf("MaxKeys = %d, want >= 4096", got)
	}
	if _, err := s.Submit(context.Background(), make([]productsort.Key, s.MaxKeys()+1)); !errors.Is(err, productsort.ErrRequestTooLarge) {
		t.Fatalf("oversize submit = %v, want ErrRequestTooLarge", err)
	}
	if _, err := s.Submit(context.Background(), nil); !errors.Is(err, productsort.ErrEmptyRequest) {
		t.Fatalf("empty submit = %v, want ErrEmptyRequest", err)
	}
}

// TestServerReplyFields: the asynchronous path carries plan and batch
// accounting on every reply.
func TestServerReplyFields(t *testing.T) {
	s, err := productsort.NewServer(productsort.ServerConfig{
		MaxKeys:   64,
		MaxLinger: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	in := serverKeys(10, 1)
	ch, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var rep productsort.SortedReply
	select {
	case rep = <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("no reply")
	}
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if len(rep.Keys) != len(in) {
		t.Fatalf("reply has %d keys, want %d", len(rep.Keys), len(in))
	}
	if rep.Network == "" || rep.Rounds <= 0 || rep.BatchSize < 1 || rep.Wait <= 0 {
		t.Fatalf("reply accounting incomplete: %+v", rep)
	}
	// Mutating the input after Submit must not corrupt the request.
	in[0] = 999
}

// TestServerMetricsSnapshot: the shared registry surfaces serving
// instruments after traffic.
func TestServerMetricsSnapshot(t *testing.T) {
	m := productsort.NewMetrics()
	s, err := productsort.NewServer(productsort.ServerConfig{
		MaxKeys:   64,
		MaxLinger: 100 * time.Microsecond,
		Metrics:   m,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.SortKeys(context.Background(), serverKeys(8, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Metrics() != m {
		t.Fatal("Metrics() does not return the configured registry")
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.submitted"]; got != 4 {
		t.Fatalf("serve.submitted = %d, want 4", got)
	}
	if got := snap.Counters["serve.planstore.misses"]; got < 1 {
		t.Fatalf("planstore misses = %d, want >= 1", got)
	}
	stats := s.StoreStats()
	if stats.Misses < 1 || stats.Hits < 1 {
		t.Fatalf("store stats = %+v, want at least one miss and one hit", stats)
	}
	if _, err := s.SortKeys(context.Background(), serverKeys(8, 9)); !errors.Is(err, productsort.ErrServerClosed) {
		t.Fatalf("post-close sort = %v, want ErrServerClosed", err)
	}
}

// TestServerRejectsUnknownEngine: engine names resolve through the same
// registry as WithEngine.
func TestServerRejectsUnknownEngine(t *testing.T) {
	if _, err := productsort.NewServer(productsort.ServerConfig{Engine: "no-such-engine"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestServerCustomNetworks: an explicit candidate set replaces the
// default and bounds admissible sizes.
func TestServerCustomNetworks(t *testing.T) {
	cube, err := productsort.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := productsort.NewServer(productsort.ServerConfig{
		Networks:  []*productsort.Network{cube},
		MaxLinger: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	if got := s.MaxKeys(); got != 8 {
		t.Fatalf("MaxKeys = %d, want 8", got)
	}
	in := serverKeys(5, 1)
	got, err := s.SortKeys(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !productsort.IsSorted(got) {
		t.Fatalf("unsorted reply %v", got)
	}
	if _, err := s.SortKeys(context.Background(), serverKeys(9, 2)); !errors.Is(err, productsort.ErrRequestTooLarge) {
		t.Fatalf("9 keys on 8-node set = %v, want ErrRequestTooLarge", err)
	}
}

// TestDefaultServingNetworks: the stock set covers [1, maxKeys] and
// includes non-hypercube alternatives for the planner to price.
func TestDefaultServingNetworks(t *testing.T) {
	nets := productsort.DefaultServingNetworks(1000)
	maxNodes, grids := 0, 0
	for _, nw := range nets {
		if nw.Nodes() > maxNodes {
			maxNodes = nw.Nodes()
		}
		if nw.FactorSize() == 4 {
			grids++
		}
	}
	if maxNodes < 1000 {
		t.Fatalf("default set covers only %d keys, want >= 1000", maxNodes)
	}
	if grids == 0 {
		t.Fatal("default set has no side-4 candidates")
	}
}
