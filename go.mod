module productsort

go 1.22
