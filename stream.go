// Streaming external sort: the public face of internal/extsort. A
// compiled network (or the batching server) becomes the run sorter of
// a run-formation-then-merge pipeline that sorts key streams of any
// length — chunk the stream into runs, sort each run through a
// certified fixed-size network (sentinel padding for the ragged tail,
// THEORY.md §12), loser-tree k-way merge the runs (the paper's Section
// 3 multiway merge in software), spilling past the memory budget to
// disk. THEORY.md §15 gives the agglomeration argument: certified
// runs plus a correct k-way merge compose into a provably correct
// sorter for unbounded inputs.

package productsort

import (
	"context"

	"productsort/internal/extsort"
	"productsort/internal/serve"
)

// KeyReader is the streaming sort's source: io.Reader semantics over
// keys (fill a prefix of dst, return the count, io.EOF at the end).
type KeyReader = extsort.Reader

// KeyWriter is the streaming sort's sink: sorted blocks arrive in
// order; the slice is reused between calls.
type KeyWriter = extsort.Writer

// StreamStats reports one streaming sort's accounting: keys, runs,
// merge passes and fan-in, spill traffic, and per-stage wall time.
type StreamStats = extsort.Stats

// ErrRunUnsorted is returned (wrapped) when StreamConfig.VerifyRuns
// catches a run entering the merge out of order.
var ErrRunUnsorted = extsort.ErrRunUnsorted

// NewKeysReader streams an in-memory slice (the slice is only read).
func NewKeysReader(keys []Key) KeyReader { return extsort.NewSliceReader(keys) }

// NewKeysWriter returns an in-memory sink; call Keys for the result.
func NewKeysWriter() *extsort.SliceWriter { return extsort.NewSliceWriter() }

// StreamConfig parametrizes SortStream and Server.SubmitStream. The
// zero value of every field selects a sensible default.
type StreamConfig struct {
	// RunSize is the key count per run (default min(1024, the run
	// sorter's ceiling — the network's node count for SortStream, the
	// largest serving network for SubmitStream)).
	RunSize int
	// FanIn bounds the k-way merge's fan-in (default 16, min 2).
	FanIn int
	// RunBatch is how many runs sort together per batch replay (or, on
	// the serve path, how many are in flight at once; default 16).
	RunBatch int
	// MemoryKeys bounds resident sorted keys; runs beyond it spill to
	// disk (default 1<<21 keys = 16 MiB).
	MemoryKeys int
	// SpillDir hosts the (immediately unlinked) spill file (default
	// os.TempDir()).
	SpillDir string
	// VerifyRuns re-checks every run's sortedness before the merge and
	// fails with ErrRunUnsorted — the belt under run sorters that heal
	// themselves, like SortResilient under fault injection.
	VerifyRuns bool
}

// SortStream sorts the key stream src into dst through this compiled
// network: runs of up to RunSize keys (at most the network's node
// count) are sorted by the network's certified batch replay and merged
// with a loser-tree k-way merge. Cancellable via ctx between stages;
// on error dst may hold a sorted prefix. Safe for concurrent use —
// each call owns its run and merge state.
func (c *CompiledNetwork) SortStream(ctx context.Context, src KeyReader, dst KeyWriter, cfg StreamConfig) (*StreamStats, error) {
	sorter := extsort.NewNetworkSorter(c.prog, 0)
	return extsort.Sort(ctx, src, dst, sorter, extsort.Config{
		RunSize:    cfg.RunSize,
		FanIn:      cfg.FanIn,
		RunBatch:   cfg.RunBatch,
		MemoryKeys: cfg.MemoryKeys,
		SpillDir:   cfg.SpillDir,
		VerifyRuns: cfg.VerifyRuns,
	})
}

// SortStreamKeys is the in-memory convenience: sort keys of any length
// through the streaming tier and return a fresh sorted slice.
func (c *CompiledNetwork) SortStreamKeys(ctx context.Context, keys []Key, cfg StreamConfig) ([]Key, *StreamStats, error) {
	out := NewKeysWriter()
	stats, err := c.SortStream(ctx, NewKeysReader(keys), out, cfg)
	if err != nil {
		return nil, stats, err
	}
	return out.Keys(), stats, nil
}

// SubmitStream is the server's large-request lane: it sorts a key
// stream of any length by chunking it into runs that ride the normal
// admission/batching path — each run maps to the cheapest covering
// certified network and batches with concurrent point traffic — then
// k-way merging the sorted runs. Where Submit sheds oversized requests
// with ErrRequestTooLarge and overload with ErrQueueFull, SubmitStream
// degrades to run-at-a-time admission: any length is accepted, and
// queue-full inside the lane becomes backoff-and-resubmit. The
// extsort.* instruments land in the server's metrics registry.
func (s *Server) SubmitStream(ctx context.Context, src KeyReader, dst KeyWriter, cfg StreamConfig) (*StreamStats, error) {
	return s.s.SubmitStream(ctx, src, dst, serve.StreamConfig{
		RunSize:    cfg.RunSize,
		FanIn:      cfg.FanIn,
		RunBatch:   cfg.RunBatch,
		MemoryKeys: cfg.MemoryKeys,
		SpillDir:   cfg.SpillDir,
		VerifyRuns: cfg.VerifyRuns,
	})
}
