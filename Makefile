# Verification pipeline. `make ci` is the gate: vet, build, full test
# suite, race detector repo-wide, gofmt cleanliness (any unformatted
# file fails the run), static analysis (when the pinned tools are
# installed — see lint-tools), and the coverage floor.

GO ?= go

# Pinned analysis tool versions; `make lint-tools` installs them with
# the module-aware `go install pkg@version` form, so they never touch
# go.mod. CI installs them; locally `make lint` degrades to a skip with
# a notice when a tool is absent (offline boxes stay green).
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

# Total statement coverage floor for `make cover`. The recorded
# baseline at the time the gate was added was 82.1%; the floor sits a
# couple of points under it to absorb counting jitter from randomized
# property tests and new low-risk code while still catching real
# regressions. Raise it when the baseline moves up.
COVER_FLOOR ?= 80.0

.PHONY: ci vet build test test-shuffle race fmtcheck fmt lint lint-tools cover \
	bce bench-schedule chaos fuzz cert serve-soak bench-serve contend epoch-stress \
	extsort-battery extsort-fuzz bench-extsort

ci: vet build test race fmtcheck lint cover bce

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shuffled double-run: flushes test-order dependence and stale-cache
# assumptions (each test file must pass in any order, twice).
test-shuffle:
	$(GO) test -shuffle=on -count=2 ./...

race:
	$(GO) test -race ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

# Static analysis: staticcheck (bug patterns, simplifications) and
# govulncheck (known-vulnerable call paths in the stdlib/toolchain —
# this module has no third-party dependencies). A tool that is not on
# PATH is skipped with a notice instead of failing, so lint works on
# machines without network access; CI runs lint-tools first and gets
# the full gate.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (run 'make lint-tools')"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (run 'make lint-tools')"; \
	fi

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Coverage gate: run the full suite with statement coverage, print the
# per-package summary, and fail if total coverage drops below
# COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@$(GO) tool cover -func=coverage.out | tail -20
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# Bounds-check-elimination gate: the columnar kernel's inner min/max
# loop (internal/schedule/kernel.go) must compile with zero IsInBounds
# checks — the per-element checks the BCE idiom (`hi = hi[:len(lo)]` +
# `for s := range lo`) exists to remove. Per-comparator IsSliceInBounds
# checks are amortized over the column width and allowed. The Go build
# cache replays compiler diagnostics on cache hits, so the grep is
# reliable without cache-busting.
bce:
	@out=$$($(GO) build -gcflags='productsort/internal/schedule=-d=ssa/check_bce' ./internal/schedule/ 2>&1); \
	echo "$$out" | grep 'kernel.go' || true; \
	if echo "$$out" | grep 'kernel\.go' | grep -q 'Found IsInBounds'; then \
		echo "bce: kernel.go inner loop has per-element bounds checks"; exit 1; \
	fi; \
	echo "bce: kernel.go inner loop is bounds-check free"

bench-schedule:
	$(GO) run ./cmd/bench -schedule

# Chaos smoke: resilient sorts under injected faults across topologies,
# plus the fault-rate x engine sweep (deterministic replay vs the
# randomized engine per q variant); fails if any deterministic run ends
# unsorted, any randomized run fails acceptance, or the sweep's top
# rate no longer collapses the deterministic engine. Writes
# BENCH_chaos.json. CHAOS_BASE offsets the fault seeds so CI matrix
# legs explore distinct chaos.
CHAOS_BASE ?= 0
chaos:
	$(GO) run ./cmd/bench -chaos -seeds 3 -chaosbase $(CHAOS_BASE)

# Fuzz the fault-plan scrub contract: injected key corruption must be
# detected by the checksum scrub (or provably harmless), and fault
# plans must be deterministic. Also fuzz the gray-code kernel the whole
# snake order rests on: rank/unrank round-trips and the split-position
# lemma for any radix/dimension. The columnar equivalence target proves
# RunBatchColumnar matches the scalar ExecBackend replay on arbitrary
# batches (mixed sizes, all-sentinel items, size-1). Bounded so it fits
# in CI.
fuzz:
	$(GO) test ./internal/faults/ -run=^$$ -fuzz=FuzzScrubDetectsCorruption -fuzztime=20s
	$(GO) test ./internal/faults/ -run=^$$ -fuzz=FuzzFaultPlanDeterminism -fuzztime=10s
	$(GO) test ./internal/gray/ -run=^$$ -fuzz=FuzzRankUnrank -fuzztime=10s
	$(GO) test ./internal/gray/ -run=^$$ -fuzz=FuzzSnakeRankUnrank -fuzztime=10s
	$(GO) test ./internal/gray/ -run=^$$ -fuzz=FuzzSplitPosLemma -fuzztime=10s
	$(GO) test ./internal/gray/ -run=^$$ -fuzz=FuzzMixedRadixRoundTrip -fuzztime=10s
	$(GO) test ./internal/schedule/ -run=^$$ -fuzz=FuzzColumnarEquivalence -fuzztime=10s
	$(GO) test ./internal/extsort/ -run=^$$ -fuzz=FuzzSortStreamEquivalence -fuzztime=15s

# Certification gate: machine-check (0-1 principle, bitsliced) that the
# compiled phase program of every built-in family/engine pair sorts —
# exhaustively up to 16 keys in CI, sampled with coverage lint above.
# Fails on any counterexample. Writes BENCH_cert.json.
cert:
	$(GO) run ./cmd/bench -cert -certmax 16

# Serving soak: the batching sort server hammered from many goroutines
# under the race detector for a few seconds — deadlines, cancellations,
# shedding and graceful drain all exercised concurrently.
serve-soak:
	SOAK_MS=3000 $(GO) test -race -run TestServerSoak -count=1 ./internal/serve/

# Serving saturation curve: open-loop offered load against the server;
# prints the throughput/latency table and writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/bench -serve

# Plan-store contention sweep: the old mutex LRU vs the lock-free
# versioned-read store across GOMAXPROCS {1, 4, all}, writing
# BENCH_contend.json. CONTEND_MINGAIN > 0 arms the lock-plateau gate:
# the run fails unless the lock-free store's all-core throughput is at
# least that multiple of its own single-core figure (the gate auto-
# skips, recording why, on hosts with fewer CPUs than the sweep). CI's
# contend job runs this with CONTEND_MINGAIN=2.
CONTEND_MINGAIN ?= 0
contend:
	$(GO) run ./cmd/bench -contend -mingain $(CONTEND_MINGAIN)

# Epoch-reclamation stress: the store's memory-lifecycle invariants
# (pinned readers never observe a freed program; every retired program
# is freed exactly once; the sharded admission bound is exact) hammered
# under the race detector for STRESS_MS milliseconds. Plain `go test`
# runs the same tests at 200ms; this target is the extended CI leg.
STRESS_MS ?= 2000
epoch-stress:
	STRESS_MS=$(STRESS_MS) $(GO) test -race -count=1 \
		-run 'TestEpochReclaimStress|TestShardedLimiter' ./internal/serve/

# Streaming external sort battery, race-enabled: the extsort package's
# oracle/property/cancel tests, the serve large-request lane, and the
# root-level acceptance tests (1e6-key oracle under -race, chaos-leg
# run formation through SortResilient, spill-path oracle).
extsort-battery:
	$(GO) test -race -count=1 ./internal/extsort/
	$(GO) test -race -count=1 -run 'SubmitStream' ./internal/serve/
	$(GO) test -race -count=1 \
		-run 'TestSortStream|TestServerSubmitStreamRoot' .

# Bounded streaming-sort fuzz: SortStream vs sort.Slice over
# fuzz-chosen lengths, run sizes, fan-ins and spill budgets. The pinned
# short budget keeps it a smoke pass in CI; crank -fuzztime locally for
# a real hunt.
EXTSORT_FUZZTIME ?= 20s
extsort-fuzz:
	$(GO) test ./internal/extsort/ -run=^$$ \
		-fuzz=FuzzSortStreamEquivalence -fuzztime=$(EXTSORT_FUZZTIME)

# Streaming tier vs sort.Slice: throughput over the size sweep plus the
# merge fan-in sweep; writes BENCH_extsort.json.
bench-extsort:
	$(GO) run ./cmd/bench -extsort
