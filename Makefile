# Verification pipeline. `make ci` is the gate: vet, build, full test
# suite, race detector repo-wide, and gofmt cleanliness (any
# unformatted file fails the run).

GO ?= go

.PHONY: ci vet build test race fmtcheck fmt bench-schedule chaos fuzz

ci: vet build test race fmtcheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

bench-schedule:
	$(GO) run ./cmd/bench -schedule

# Chaos smoke: resilient sorts under injected faults across topologies;
# fails if any run ends unsorted or unrecoverable. Writes BENCH_chaos.json.
chaos:
	$(GO) run ./cmd/bench -chaos -seeds 3

# Fuzz the fault-plan scrub contract: injected key corruption must be
# detected by the checksum scrub (or provably harmless), and fault
# plans must be deterministic. Bounded so it fits in CI.
fuzz:
	$(GO) test ./internal/faults/ -run=^$$ -fuzz=FuzzScrubDetectsCorruption -fuzztime=20s
	$(GO) test ./internal/faults/ -run=^$$ -fuzz=FuzzFaultPlanDeterminism -fuzztime=10s
