# Verification pipeline. `make ci` is the gate: vet, build, full test
# suite, race detector on the concurrency-heavy packages, and gofmt
# cleanliness (any unformatted file fails the run).

GO ?= go

.PHONY: ci vet build test race fmtcheck fmt bench-schedule

ci: vet build test race fmtcheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/schedule/... ./internal/spmd/...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

bench-schedule:
	$(GO) run ./cmd/bench -schedule
