// Certification: the public face of the bitsliced 0-1 proof engine
// (internal/cert). A compiled network can be machine-checked to sort —
// exhaustively over all 2^n zero-one inputs inside the envelope (a
// proof, by the 0-1 principle), by seeded sampling above it (a lint).

package productsort

import (
	"time"

	"productsort/internal/cert"
)

// CertifyOptions configures CompiledNetwork.Certify. The zero value
// (or a nil pointer) requests an exhaustive proof for networks of at
// most 24 keys and a 65536-vector random sweep above that.
type CertifyOptions struct {
	// Workers is the parallel worker count; <1 selects GOMAXPROCS.
	Workers int
	// MaxExhaustiveKeys caps the exhaustive envelope (<1 = 24, hard
	// cap 30); larger networks are sampled.
	MaxExhaustiveKeys int
	// SampleVectors is the sampled-mode vector count (<1 = 65536),
	// rounded up to a multiple of 64.
	SampleVectors int
	// Seed drives sampled-mode vector generation.
	Seed int64
	// ForceSampled samples even inside the exhaustive envelope.
	ForceSampled bool
}

// DeadComparator identifies a comparator never observed exchanging
// across the certified input set. After an exhaustive certified run it
// is provably removable; after a sampled run it is a coverage lint.
type DeadComparator struct {
	// Op is the index in the compiled program's instruction stream and
	// Pair the comparator's index within that op.
	Op, Pair int
	// Lo and Hi are the comparator's node ids.
	Lo, Hi int
}

// CertWitness is a minimal 0-1 input the program fails to sort: fewest
// ones, then lexicographically least, among the failing vectors the
// minimizer can reach.
type CertWitness struct {
	// Vector[p] is the 0/1 key loaded at snake position p.
	Vector []byte
	// Ones is the Hamming weight of Vector.
	Ones int
	// FailPos is the first snake position where the replayed output
	// places a 1 immediately before a 0.
	FailPos int
	// BreakOp is the first op index at which the sorted-prefix metric
	// strictly decreases during the witness replay (-1: never).
	BreakOp int
	// Minimal reports 1-minimality: clearing any single 1 yields an
	// input the program sorts.
	Minimal bool
}

// Certificate reports one certification run over a compiled network's
// phase program.
type Certificate struct {
	// Certified is true when every replayed 0-1 vector sorted;
	// combined with Exhaustive it is a proof over all inputs.
	Certified bool
	// Exhaustive reports whether all 2^Keys vectors were covered.
	Exhaustive bool
	// Keys is the network's node count n.
	Keys int
	// Vectors, Words and WordOps count the certified inputs, the
	// 64-vector word blocks replayed, and the comparator word
	// operations executed.
	Vectors, Words, WordOps uint64
	// Ops and Comparators describe the program: exchange phases and
	// total comparator count.
	Ops, Comparators int
	// Dead lists comparators never observed exchanging (nil after a
	// failed run).
	Dead []DeadComparator
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// Witness is the minimized counterexample; nil when Certified.
	Witness *CertWitness
}

// Certify machine-checks that the network's compiled phase program
// sorts. Inside the exhaustive envelope (Keys ≤ 24 by default) it
// replays all 2^n 0-1 vectors — by the 0-1 principle a full proof that
// every input sorts — using the bitsliced engine (64 vectors per word,
// parallel workers). Above the envelope it replays a seeded random
// sample instead, which can only refute, not prove. A nil opts selects
// the defaults.
//
// On failure the Certificate carries a minimized witness; feeding
// Witness.Vector (snake order) to Sort reproduces the misbehaviour.
func (c *CompiledNetwork) Certify(opts *CertifyOptions) (*Certificate, error) {
	var o cert.Options
	if opts != nil {
		o = cert.Options{
			Workers:           opts.Workers,
			MaxExhaustiveKeys: opts.MaxExhaustiveKeys,
			SampleVectors:     opts.SampleVectors,
			Seed:              opts.Seed,
			ForceSampled:      opts.ForceSampled,
		}
	}
	res, err := cert.Run(c.prog, o)
	if err != nil {
		return nil, err
	}
	out := &Certificate{
		Certified:   res.Certified,
		Exhaustive:  res.Exhaustive,
		Keys:        res.Keys,
		Vectors:     res.Vectors,
		Words:       res.Words,
		WordOps:     res.WordOps,
		Ops:         res.Ops,
		Comparators: res.Comparators,
		Elapsed:     res.Elapsed,
	}
	for _, d := range res.Dead {
		out.Dead = append(out.Dead, DeadComparator{Op: d.Op, Pair: d.Pair, Lo: d.Lo, Hi: d.Hi})
	}
	if w := res.Witness; w != nil {
		out.Witness = &CertWitness{
			Vector:  append([]byte(nil), w.Vector...),
			Ones:    w.Ones,
			FailPos: w.FailPos,
			BreakOp: w.BreakOp,
			Minimal: w.Minimal,
		}
	}
	return out, nil
}
