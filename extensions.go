package productsort

import (
	"fmt"

	"productsort/internal/blocksort"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/prouting"
	"productsort/internal/seqmerge"
	"productsort/internal/sort2d"
	"productsort/internal/spmd"
	"productsort/internal/viz"
)

// Additional network families and the two extensions built on the
// algorithm's obliviousness: extractable comparator schedules and
// merge-split block sorting.

// CirculantProduct returns the r-dimensional product of the circulant
// graph C_n(offsets).
func CirculantProduct(n int, offsets []int, r int) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("productsort: circulant size %d < 3", n)
	}
	for _, d := range offsets {
		if d <= 0 || d >= n {
			return nil, fmt.Errorf("productsort: circulant offset %d out of range", d)
		}
	}
	return wrap(graph.Circulant(n, offsets...), r)
}

// WheelProduct returns the r-dimensional product of the n-node wheel.
func WheelProduct(n, r int) (*Network, error) {
	if n < 4 {
		return nil, fmt.Errorf("productsort: wheel size %d < 4", n)
	}
	return wrap(graph.Wheel(n), r)
}

// CaterpillarProduct returns the r-dimensional product of a caterpillar
// tree with the given spine length and per-spine-node leaf counts.
func CaterpillarProduct(spine int, legs []int, r int) (*Network, error) {
	if spine < 1 || len(legs) != spine {
		return nil, fmt.Errorf("productsort: caterpillar needs one leg count per spine node")
	}
	for _, l := range legs {
		if l < 0 {
			return nil, fmt.Errorf("productsort: negative leg count")
		}
	}
	return wrap(graph.Caterpillar(spine, legs), r)
}

// KautzProduct returns the r-dimensional product of the base-b,
// dimension-d Kautz graph.
func KautzProduct(b, d, r int) (*Network, error) {
	if b < 2 || d < 1 {
		return nil, fmt.Errorf("productsort: Kautz base %d / dim %d invalid", b, d)
	}
	return wrap(graph.Kautz(b, d), r)
}

// RectGrid returns a rectangular grid: the heterogeneous product of
// paths with the given side lengths, sides[0] being dimension 1 (the
// least significant axis of the snake order). The sorting algorithm's
// heterogeneous correctness condition requires the sides above
// dimension 1 to be nonincreasing (sides[1] ≥ sides[2] ≥ …); dimension 1
// is unconstrained. When the given order violates the condition the
// sides above dimension 1 are rearranged into nonincreasing order —
// check Radices for the layout actually used.
func RectGrid(sides ...int) (*Network, error) {
	return heteroOf("grid", sides, func(n int) (*graph.Graph, error) {
		if n < 2 {
			return nil, fmt.Errorf("productsort: grid side %d < 2", n)
		}
		return graph.Path(n), nil
	})
}

// RectTorus returns the heterogeneous product of cycles with the given
// side lengths, with the same dimension conventions as RectGrid. Every
// side must be at least 3.
func RectTorus(sides ...int) (*Network, error) {
	return heteroOf("torus", sides, func(n int) (*graph.Graph, error) {
		if n < 3 {
			return nil, fmt.Errorf("productsort: torus side %d < 3", n)
		}
		return graph.Cycle(n), nil
	})
}

func heteroOf(kind string, sides []int, factor func(int) (*graph.Graph, error)) (*Network, error) {
	if len(sides) < 1 {
		return nil, fmt.Errorf("productsort: %s needs at least one side", kind)
	}
	arranged := append([]int(nil), sides...)
	// Sort sides above dimension 1 into nonincreasing order.
	upper := arranged[1:]
	for i := 1; i < len(upper); i++ {
		for j := i; j > 0 && upper[j] > upper[j-1]; j-- {
			upper[j], upper[j-1] = upper[j-1], upper[j]
		}
	}
	factors := make([]*graph.Graph, len(arranged))
	for i, n := range arranged {
		g, err := factor(n)
		if err != nil {
			return nil, err
		}
		factors[i] = g
	}
	p, err := product.NewHetero(factors)
	if err != nil {
		return nil, err
	}
	return &Network{net: p}, nil
}

// Radices returns the per-dimension factor sizes (index 0 =
// dimension 1); useful to see the layout RectGrid/RectTorus chose.
func (nw *Network) Radices() []int { return nw.net.Radices() }

// RelabelDilation3 relabels the factor graph along a dilation-≤3 linear
// order (the paper's Section 2 embedding for non-Hamiltonian factors),
// which caps the routing cost of every compare-exchange sweep. For
// factors that already trace a Hamiltonian path the network is returned
// unchanged.
func RelabelDilation3(nw *Network) *Network {
	g := nw.net.Factor()
	if g.HamiltonianLabeled() {
		return nw
	}
	out, err := wrap(graph.LinearRelabel(g), nw.net.R())
	if err != nil {
		panic(err) // same parameters as the valid input network
	}
	return out
}

// Schedule is the oblivious compare-exchange schedule of a full sort on
// a network: a reusable sorting network in snake coordinates. See
// ExtractSchedule.
type Schedule struct {
	inner *mergenet.Schedule
}

// ExtractSchedule records the algorithm's phase list for the network
// with the named S₂ engine ("auto" if empty). The schedule is
// deterministic and key-independent; it can be replayed with Apply or
// used for block sorting with SortBlocks.
func ExtractSchedule(nw *Network, engineName string) (*Schedule, error) {
	e, err := sort2d.ByName(engineName)
	if err != nil {
		return nil, err
	}
	s, err := mergenet.ExtractNet(nw.net, e)
	if err != nil {
		return nil, err
	}
	return &Schedule{inner: s}, nil
}

// Inputs returns the schedule's sequence length (the processor count).
func (s *Schedule) Inputs() int { return s.inner.Inputs }

// Depth returns the number of parallel compare-exchange phases.
func (s *Schedule) Depth() int { return s.inner.Depth() }

// Size returns the total comparator count.
func (s *Schedule) Size() int { return s.inner.Size() }

// Apply sorts keys in place by replaying the schedule; len(keys) must
// equal Inputs().
func (s *Schedule) Apply(keys []Key) { s.inner.Apply(keys) }

// MarshalJSON encodes the schedule (network name, input count, phase
// list) for external tools; cmd/schedule writes this format.
func (s *Schedule) MarshalJSON() ([]byte, error) { return s.inner.MarshalJSON() }

// BlockStats reports the work of a blocked sort.
type BlockStats struct {
	// Rounds is the parallel merge-split round count — equal to the
	// schedule depth, independent of block size.
	Rounds int
	// MergeSplits is the total merge-split operation count.
	MergeSplits int
	// KeysMoved counts keys shipped between processors.
	KeysMoved int
}

// Render draws keys (given in snake order, as Result.Keys and observer
// callbacks provide them) as an ASCII grid in the paper's figure layout:
// dimension 1 left-to-right, dimension 2 top-to-bottom, dimension 3 as
// side-by-side slabs. Networks with r > 3 fall back to the snake
// sequence.
func (nw *Network) Render(snakeKeys []Key) string {
	if len(snakeKeys) != nw.Nodes() {
		return fmt.Sprintf("render: %d keys for %d nodes\n", len(snakeKeys), nw.Nodes())
	}
	byNode := make([]Key, len(snakeKeys))
	for pos, k := range snakeKeys {
		byNode[nw.net.NodeAtSnake(pos)] = k
	}
	return viz.RenderKeys(nw.net, byNode)
}

// DOT renders the whole product network in Graphviz DOT format (small
// networks only: every edge is emitted).
func (nw *Network) DOT() string { return viz.ProductDOT(nw.net) }

// FactorDOT renders the factor graph in Graphviz DOT format with the
// snake-order edges highlighted.
func (nw *Network) FactorDOT() string { return viz.FactorDOT(nw.net.Factor()) }

// RouteStats reports a permutation routing simulation on the network.
type RouteStats struct {
	// Rounds is the parallel routing time (single-port model).
	Rounds int
	// MaxQueue is the deepest per-node packet queue observed.
	MaxQueue int
	// TotalHops is the summed hop count of all packets.
	TotalHops int
}

// RoutePermutation simulates store-and-forward routing of the
// permutation perm on the network: node v's packet travels to perm[v]
// along dimension-ordered shortest paths. This prices explicit data
// movements — the operations the sorting algorithm's free Steps 1 and 3
// avoid.
func (nw *Network) RoutePermutation(perm []int) (RouteStats, error) {
	if len(perm) != nw.Nodes() {
		return RouteStats{}, fmt.Errorf("productsort: permutation length %d for %d nodes", len(perm), nw.Nodes())
	}
	seen := make([]bool, nw.Nodes())
	for _, d := range perm {
		if d < 0 || d >= nw.Nodes() || seen[d] {
			return RouteStats{}, fmt.Errorf("productsort: not a permutation")
		}
		seen[d] = true
	}
	st := prouting.New(nw.net).Route(perm)
	return RouteStats{Rounds: st.Rounds, MaxQueue: st.MaxQueue, TotalHops: st.TotalHops}, nil
}

// MessagePassingResult reports a SortMessagePassing run.
type MessagePassingResult struct {
	// Keys holds the sorted keys in snake order.
	Keys []Key
	// Messages is the number of key messages processors sent.
	Messages int
	// Relays counts store-and-forward hops through intermediate
	// processors (non-zero only for non-Hamiltonian factors).
	Relays int
}

// SortMessagePassing sorts keys with the fully concurrent SPMD engine:
// one goroutine per processor, every key movement crossing a physical
// network edge (multi-hop relays for routed exchanges). Functionally
// identical to Sort; use it to validate edge-faithful execution or to
// watch real concurrency. Time accounting lives in Sort's simulator.
func SortMessagePassing(nw *Network, keys []Key) (*MessagePassingResult, error) {
	if len(keys) != nw.Nodes() {
		return nil, fmt.Errorf("productsort: %d keys for %d nodes", len(keys), nw.Nodes())
	}
	e, err := spmd.SortNet(nw.net, keys, nil)
	if err != nil {
		return nil, err
	}
	return &MessagePassingResult{
		Keys:     e.SnakeKeys(),
		Messages: e.Messages(),
		Relays:   e.Relays(),
	}, nil
}

// SortBlocks sorts Inputs()×blockSize keys in place: processor i holds
// keys[i·blockSize : (i+1)·blockSize]. Each processor pre-sorts its
// block, then the schedule runs with merge-split operators — the same
// number of parallel rounds as the one-key-per-node sort, with
// blockSize keys moving per exchange. This is the keys ≫ processors
// regime in which the paper's Section 1 places multiway algorithms.
func (s *Schedule) SortBlocks(keys []Key, blockSize int) (BlockStats, error) {
	st, err := blocksort.Sort(s.inner, keys, blockSize)
	if err != nil {
		return BlockStats{}, err
	}
	return BlockStats{Rounds: st.Rounds, MergeSplits: st.MergeSplits, KeysMoved: st.KeysMoved}, nil
}

// MergeSorted merges any number (≥2) of equal-length sorted key slices
// into one sorted slice with the paper's multiway-merge algorithm run
// as a sequence procedure (Section 3 verbatim; no simulator involved).
// The slice length must be a power of the slice count. For general
// merging needs this is a curiosity — the point is that the paper's
// network algorithm is, at heart, an ordinary merge procedure.
func MergeSorted(seqs [][]Key) ([]Key, error) { return seqmerge.Merge(seqs) }

// SortSequence sorts n^r keys with the sequence form of the algorithm
// (Section 3.3 driver, no simulator): a fast reference for validating
// network runs at large sizes.
func SortSequence(keys []Key, n, r int) ([]Key, error) { return seqmerge.Sort(keys, n, r) }
