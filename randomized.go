// Randomized sorting: the public face of the internal/randsort engine.
// Where SortResilient defends an oblivious schedule against faults
// with checkpoints and retries, SortRandomized has no schedule to
// defend — pairs are drawn from a distribution q over the network's
// links, faults merely thin the draw, and a seeded 0-1 verifier plus a
// deterministic scrub certify the probabilistic outcome.

package productsort

import (
	"errors"
	"fmt"

	"productsort/internal/faults"
	"productsort/internal/randsort"
	"productsort/internal/simnet"
)

// ErrRoundCap reports that a randomized sort hit its hard round cap
// before the verifier and final scrub accepted the keys as sorted. The
// accompanying Result still carries the partial state and the full
// convergence accounting — under heavy faults the engine degrades to
// "not done yet", never to a wrong answer.
var ErrRoundCap = randsort.ErrRoundCap

// RandomizedConfig configures SortRandomized. The zero value selects
// the uniform q distribution, the package defaults, and no faults.
type RandomizedConfig struct {
	// Q names the pair distribution: "uniform" (default), "dim-weighted"
	// (equal draw mass per dimension), or "snake-biased" (snake steps
	// up-weighted 4x).
	Q string
	// Seed drives every random choice — pair draws, sortedness samples,
	// verifier vectors. Runs are reproducible per (network, config).
	Seed int64
	// MaxRounds caps the synchronous rounds (0 = 256 per node).
	MaxRounds int
	// CheckEvery is the termination-check cadence in rounds (0 = 8).
	CheckEvery int
	// DrawsPerRound is the q draws attempted per round (0 = node count).
	DrawsPerRound int
	// SamplePairs is the sampled sortedness gate's probe count (0 = 24).
	SamplePairs int
	// VerifyVectors is the 0-1 vector budget per verifier run (0 = 2048).
	VerifyVectors int
	// Faults optionally injects the same deterministic fault plans
	// SortResilient takes. Drops and stalls thin the drawn pairs
	// (costing rounds, never correctness), corruption flips live key
	// bits (caught by the scrub), dead links shrink the draw pool and
	// re-price snake steps as detours. The checkpoint/retry knobs
	// (CheckpointEvery, MaxRetries, MaxRepairPasses) are meaningless
	// here and ignored: there is no schedule to replay.
	Faults FaultConfig
}

// RandomizedReport carries the convergence accounting of one
// SortRandomized run.
type RandomizedReport struct {
	// Variant is the realized q distribution's name.
	Variant string
	// Rounds is the number of synchronous rounds drawn; RoundCharge the
	// cost-model parallel time including routed detours (also surfaced
	// as Result.Rounds).
	Rounds, RoundCharge int
	// Draws counts q draws; Applied the compare-exchanges that survived
	// matching and fault thinning.
	Draws, Applied int
	// Checks counts termination checks, SamplePasses how many passed
	// the sampled sortedness gate, VerifyRuns the 0-1 verifier
	// invocations over the realized comparator sequence.
	Checks, SamplePasses, VerifyRuns int
	// VerifyVectors totals the 0-1 vectors the verifier replayed.
	VerifyVectors uint64
	// VerifierAccepted records whether the final verifier run certified
	// the realized comparator sequence; ScrubSorted the deterministic
	// full-order scrub verdict; Converged whether the run terminated by
	// acceptance rather than the round cap.
	VerifierAccepted, ScrubSorted, Converged bool
}

// SortRandomized sorts keys (snake order, like Sort) with the
// randomized pairwise engine: repeatedly draw node pairs from q and
// compare-exchange them until a sampled sortedness gate, a seeded 0-1
// certification of the realized comparator sequence, and a final
// deterministic scrub all accept. The compiled program is not used —
// the engine is schedule-free, which is exactly why faults degrade it
// gracefully — but the entry lives on CompiledNetwork so tracing and
// executor configuration carry over.
//
// On ErrRoundCap the Result reports the degraded partial state; any
// other error is a configuration or verifier failure.
func (c *CompiledNetwork) SortRandomized(keys []Key, cfg RandomizedConfig) (*Result, error) {
	if f := c.Family(); f != FamilyProduct {
		// The pairwise engine draws from the product network's edge
		// distribution; on an emitted family's 1-D host that would be a
		// different (and absurdly slower) algorithm, not this network.
		return nil, fmt.Errorf("productsort: SortRandomized on %s network: %w", f, ErrUnsupportedFamily)
	}
	if len(keys) != c.nw.Nodes() {
		return nil, fmt.Errorf("productsort: %d keys for %d nodes", len(keys), c.nw.Nodes())
	}
	variant, err := randsort.VariantByName(cfg.Q)
	if err != nil {
		return nil, err
	}
	var plan *faults.Plan
	if !quietFaults(cfg.Faults) {
		if plan, err = cfg.Faults.plan(c.nw.Dims()); err != nil {
			return nil, err
		}
	} else if err := cfg.Faults.validate(c.nw.Dims()); err != nil {
		return nil, err
	}
	eng, err := randsort.New(c.nw.net, randsort.Config{
		Variant:       variant,
		Seed:          cfg.Seed,
		MaxRounds:     cfg.MaxRounds,
		CheckEvery:    cfg.CheckEvery,
		DrawsPerRound: cfg.DrawsPerRound,
		SamplePairs:   cfg.SamplePairs,
		VerifyVectors: cfg.VerifyVectors,
		Faults:        plan,
		Inner:         nil,
		Tracer:        c.tracer,
	})
	if err != nil {
		return nil, err
	}
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[c.nw.net.NodeAtSnake(pos)] = k
	}
	rep, err := eng.Sort(byNode)
	if err != nil && !errors.Is(err, ErrRoundCap) {
		return nil, err
	}
	clk := simnet.Clock{Rounds: rep.RoundCharge, RoutedPhases: rep.Routed}
	res := newResult(c.nw, clk, eng.Name(), byNode)
	res.Random = &RandomizedReport{
		Variant:          rep.Variant,
		Rounds:           rep.Rounds,
		RoundCharge:      rep.RoundCharge,
		Draws:            rep.Draws,
		Applied:          rep.Applied,
		Checks:           rep.Checks,
		SamplePasses:     rep.SamplePasses,
		VerifyRuns:       rep.VerifyRuns,
		VerifyVectors:    rep.VerifyVectors,
		VerifierAccepted: rep.VerifierAccepted,
		ScrubSorted:      rep.ScrubSorted,
		Converged:        rep.Converged,
	}
	if plan != nil {
		res.Faults = &FaultReport{
			Injected:  rep.Faults.Injected,
			Dropped:   rep.Faults.Dropped,
			Stalled:   rep.Faults.Stalled,
			Corrupted: rep.Faults.Corrupted,
			DeadLinks: rep.Faults.DeadLinks,
			Rerouted:  rep.Faults.Rerouted,
		}
	}
	return res, err
}

// quietFaults reports whether cfg injects nothing (mirrors
// faults.Config.Quiet over the public fields).
func quietFaults(cfg FaultConfig) bool {
	return cfg.DropRate == 0 && cfg.StallRate == 0 && cfg.CorruptRate == 0 &&
		cfg.LinkFailRate == 0 && len(cfg.DeadLinks) == 0
}
