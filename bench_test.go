// Benchmarks that regenerate every reproduced table and figure (one
// Benchmark per experiment E1–E8 of DESIGN.md), plus micro-benchmarks of
// the sorter on each network family. Experiment benches report their
// wall time per full regeneration; sorting benches additionally report
// the simulated parallel rounds as a custom metric.
package productsort

import (
	"testing"

	"productsort/internal/exp"
	"productsort/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run()
		if len(res.Tables)+len(res.Figures) == 0 {
			b.Fatal("experiment produced no artifacts")
		}
	}
}

func BenchmarkE1_PaperExample(b *testing.B)        { benchExperiment(b, "e1") }
func BenchmarkE2_DirtyArea(b *testing.B)           { benchExperiment(b, "e2") }
func BenchmarkE3_Theorem1(b *testing.B)            { benchExperiment(b, "e3") }
func BenchmarkE4_UniversalBound(b *testing.B)      { benchExperiment(b, "e4") }
func BenchmarkE5_GridMCTScaling(b *testing.B)      { benchExperiment(b, "e5") }
func BenchmarkE6_HypercubeVsBatcher(b *testing.B)  { benchExperiment(b, "e6") }
func BenchmarkE7_PetersenDeBruijn(b *testing.B)    { benchExperiment(b, "e7") }
func BenchmarkE8_VsColumnsort(b *testing.B)        { benchExperiment(b, "e8") }
func BenchmarkE9_BlockScaling(b *testing.B)        { benchExperiment(b, "e9") }
func BenchmarkE10_LabelingAblation(b *testing.B)   { benchExperiment(b, "e10") }
func BenchmarkE11_Obliviousness(b *testing.B)      { benchExperiment(b, "e11") }
func BenchmarkE12_Heterogeneous(b *testing.B)      { benchExperiment(b, "e12") }
func BenchmarkE13_TorusEmulation(b *testing.B)     { benchExperiment(b, "e13") }
func BenchmarkE14_PermutationRouting(b *testing.B) { benchExperiment(b, "e14") }
func BenchmarkE15_EngineAgreement(b *testing.B)    { benchExperiment(b, "e15") }

func benchSort(b *testing.B, nw *Network) {
	keys := workload.Uniform(nw.Nodes(), 1)
	s, err := NewSorter()
	if err != nil {
		b.Fatal(err)
	}
	var rounds int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Sort(nw, keys)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "parallel-rounds")
	b.ReportMetric(float64(nw.Nodes()), "processors")
}

func BenchmarkSortGrid4x4x4(b *testing.B)    { benchSort(b, mustNet(Grid(4, 3))) }
func BenchmarkSortGrid8x8x8(b *testing.B)    { benchSort(b, mustNet(Grid(8, 3))) }
func BenchmarkSortGrid16x16(b *testing.B)    { benchSort(b, mustNet(Grid(16, 2))) }
func BenchmarkSortTorus5x5x5(b *testing.B)   { benchSort(b, mustNet(Torus(5, 3))) }
func BenchmarkSortHypercube6(b *testing.B)   { benchSort(b, mustNet(Hypercube(6))) }
func BenchmarkSortHypercube10(b *testing.B)  { benchSort(b, mustNet(Hypercube(10))) }
func BenchmarkSortMCT3x2(b *testing.B)       { benchSort(b, mustNet(MeshConnectedTrees(3, 2))) }
func BenchmarkSortPetersen2(b *testing.B)    { benchSort(b, mustNet(PetersenCube(2))) }
func BenchmarkSortDeBruijn8x8(b *testing.B)  { benchSort(b, mustNet(DeBruijnProduct(2, 3, 2))) }
func BenchmarkSortShuffleEx8x8(b *testing.B) { benchSort(b, mustNet(ShuffleExchangeProduct(3, 2))) }

func BenchmarkSortGoroutineExecutor(b *testing.B) {
	nw, err := Grid(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	keys := workload.Uniform(nw.Nodes(), 1)
	s, err := NewSorter(WithGoroutines())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sort(nw, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: S_2 engine choice (DESIGN.md calls out shearsort vs the
// simpler snake odd-even transposition).
func benchEngine(b *testing.B, engine string) {
	nw, err := Grid(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	keys := workload.Uniform(nw.Nodes(), 1)
	s, err := NewSorter(WithEngine(engine))
	if err != nil {
		b.Fatal(err)
	}
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Sort(nw, keys)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "parallel-rounds")
}

func BenchmarkEngineShearsort(b *testing.B) { benchEngine(b, "shearsort") }
func BenchmarkEngineSnakeOET(b *testing.B)  { benchEngine(b, "snake-oet") }

func BenchmarkExtractSchedule(b *testing.B) {
	nw := mustNet(Grid(4, 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractSchedule(nw, "auto"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleReplay4096(b *testing.B) {
	nw := mustNet(Hypercube(12))
	s, err := ExtractSchedule(nw, "auto")
	if err != nil {
		b.Fatal(err)
	}
	keys := workload.Uniform(4096, 1)
	buf := make([]Key, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		s.Apply(buf)
	}
}

func BenchmarkBlockSort64x64(b *testing.B) {
	nw := mustNet(Hypercube(6))
	s, err := ExtractSchedule(nw, "auto")
	if err != nil {
		b.Fatal(err)
	}
	keys := workload.Uniform(64*64, 1)
	buf := make([]Key, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		if _, err := s.SortBlocks(buf, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// Wall-clock scaling of the phase executors on a big machine.
func benchExecutor(b *testing.B, exec string) {
	nw := mustNet(Grid(16, 3)) // 4096 processors
	keys := workload.Uniform(nw.Nodes(), 1)
	opts := []Option{}
	if exec == "goroutine" {
		opts = append(opts, WithGoroutines())
	}
	s, err := NewSorter(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sort(nw, keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorSequential4096(b *testing.B) { benchExecutor(b, "sequential") }
