// Observability: the public face of internal/obs. A Tracer attached
// with WithTracer receives typed events from every layer of the replay
// stack — phase begin/end with schedule-IR identity (op index, kind,
// dimension, S2/sweep attribution, round charge), and recovery events
// (checkpoints, scrub detections, retries, repair passes) from
// SortResilient — so a run can be decomposed against the paper's
// S_r(N) = (r-1)²·S₂(N) + (r-1)(r-2)·R(N) round bound instead of only
// compared in total.
//
// The default is no tracer, and the disabled path is free: the hot
// replay loop guards every emission on a nil check and allocates
// nothing (pinned by tests with testing.AllocsPerRun).

package productsort

import (
	"io"

	"productsort/internal/obs"
)

// Tracer receives typed replay events; see obs.Tracer for the event
// payloads. The zero state (no tracer) is free on the hot path.
type Tracer = obs.Tracer

// TraceEvent aliases the phase event payload.
type TraceEvent = obs.Phase

// RecoveryEvent aliases the fault-recovery event payload.
type RecoveryEvent = obs.Recovery

// TraceRecorder is an in-memory Tracer that timestamps events and
// exports them as a Chrome trace_event JSON file (open with
// chrome://tracing or https://ui.perfetto.dev) plus a per-phase
// round/time breakdown.
type TraceRecorder = obs.Recorder

// NewTraceRecorder returns an empty TraceRecorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// Metrics is a registry of named counters, gauges and fixed-bucket
// histograms, snapshotable as JSON with WriteJSON.
type Metrics = obs.Metrics

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// MetricsCollector is a Tracer that folds replay events into a Metrics
// registry (rounds by stage, phase and comparator counts, a per-phase
// round histogram, recovery event counters).
type MetricsCollector = obs.Collector

// NewMetricsCollector returns a collector feeding m (a fresh registry
// when nil); attach it with WithTracer and snapshot m afterwards.
func NewMetricsCollector(m *Metrics) *MetricsCollector { return obs.NewCollector(m) }

// MultiTracer fans events out to several tracers, e.g. a TraceRecorder
// and a MetricsCollector on the same run.
func MultiTracer(ts ...Tracer) Tracer { return obs.MultiTracer(ts) }

// WithTracer attaches a tracer to every sort the Sorter (or networks it
// compiles) performs. Pass nil to detach. The same tracer instance may
// observe many runs; for Chrome traces use one TraceRecorder per run so
// timelines do not interleave.
func WithTracer(t Tracer) Option {
	return func(s *Sorter) error {
		s.tracer = t
		return nil
	}
}

// WriteChromeTrace writes rec's events as Chrome trace_event JSON.
// Convenience wrapper so callers need not reference the method set of
// the aliased internal type.
func WriteChromeTrace(rec *TraceRecorder, w io.Writer) error {
	return rec.WriteChromeTrace(w)
}
